//! Persistent-pool per-node engine ("Par Node").

use super::{degree_tiles, emit_pool_metrics, pool_threads, MsgCache, ParWorkQueue, WorkerPool};
use crate::convergence::ConvergenceTracker;
use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::math::combine_incoming;
use crate::openmp::SharedSlice;
use crate::opts::BpOptions;
use crate::stats::{BpStats, IterationStats};
use credo_graph::{Belief, BeliefGraph};
use std::time::Instant;
use tracing::Dispatch;

/// CPU-parallel per-node loopy BP on a persistent worker pool.
///
/// Semantics match [`crate::seq::SeqNodeEngine`] exactly — same Jacobi
/// updates, same convergence sum accumulated in ascending node order, so
/// beliefs and iteration counts are bit-identical for any thread count.
/// What changes is the cost model: the pool's threads are spawned once,
/// per-thread work lands in disjoint scratch slots merged deterministically
/// (no atomics), and shared-potential graphs compute each source's outgoing
/// message once per orientation instead of once per arc.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParNodeEngine;

impl BpEngine for ParNodeEngine {
    fn name(&self) -> &'static str {
        "Par Node"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Node
    }

    fn platform(&self) -> Platform {
        Platform::CpuParallel
    }

    fn run_from(
        &self,
        state: &mut crate::warm::WarmState,
        delta: &crate::warm::EvidenceDelta,
        opts: &BpOptions,
    ) -> Result<crate::warm::WarmRun, EngineError> {
        let policy = *state.policy();
        state.run_from(self.name(), delta, opts, &policy, &Dispatch::none())
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let opts = &opts.normalized();
        if opts.exec_plan {
            return crate::plan::run_node_plan(
                self.name(),
                graph,
                opts,
                trace,
                pool_threads(opts.threads),
            );
        }
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let n = graph.num_nodes();
        let threads = pool_threads(opts.threads);
        let pool = WorkerPool::new(threads);
        let mut tracker = ConvergenceTracker::new(opts);
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();

        let mut scratch: Vec<Belief> = graph.beliefs().to_vec();
        // Per-node L1 change of the last update; summed in ascending node
        // order on the main thread so the convergence sum groups floats
        // exactly like the sequential sweep, and reused as the residual for
        // `advance_by_residual`.
        let mut diffs: Vec<f32> = vec![0.0; n];
        let mut cache = MsgCache::new(graph);

        let full_sweep: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        // Per-node in-degrees for the degree-aware tiler; static for the run.
        let in_degrees: Vec<u32> = (0..n as u32)
            .map(|v| graph.in_arcs(v).len() as u32)
            .collect();
        let mut queue = opts
            .work_queue
            .then(|| ParWorkQueue::new(n, threads, |v| !graph.observed()[v]));

        loop {
            let iter_start = Instant::now();
            let active_len = match &queue {
                Some(q) => q.len(),
                None => full_sweep.len(),
            };
            if active_len == 0 {
                tracker.mark_converged();
                break;
            }
            let queue_depth = active_len as u64;
            let iter_span = trace.span(
                "iteration",
                &[
                    ("iter", (per_iteration.len() as u64).into()),
                    ("queue_depth", queue_depth.into()),
                    ("threads", threads.into()),
                ],
            );
            let msgs_before = message_updates;
            cache.refresh(graph, &pool, active_len);

            let sum: f32 = {
                let (active, mut qworkers): (&[u32], Vec<_>) = match &mut queue {
                    Some(q) => {
                        let (a, w) = q.begin_iteration();
                        (a, w)
                    }
                    None => (&full_sweep, Vec::new()),
                };
                // Contiguous arc-balanced tiles: boundaries only affect who
                // computes a node, never the (ascending) reduction order.
                let chunks: Vec<&[u32]> = degree_tiles(active, &in_degrees, threads);
                let use_queue = !qworkers.is_empty();

                // One parallel region: compute updates into disjoint
                // scratch/diff slots and push next-iteration work straight
                // from the workers.
                {
                    let prev = graph.beliefs();
                    let g = &*graph;
                    let cache_ref = &cache;
                    let scratch_shared = SharedSlice::new(&mut scratch);
                    let diffs_shared = SharedSlice::new(&mut diffs);
                    let mut chunk_msgs = vec![0u64; chunks.len()];
                    let msgs_shared = SharedSlice::new(&mut chunk_msgs);
                    let qw_shared = SharedSlice::new(&mut qworkers);
                    let (qt, wake) = (opts.queue_threshold, opts.wake_neighbors);
                    let chunks_ref = &chunks;
                    pool.broadcast(&|i| {
                        let Some(chunk) = chunks_ref.get(i) else {
                            return;
                        };
                        let mut local_msgs = 0u64;
                        for &v in *chunk {
                            let in_arcs = g.in_arcs(v);
                            let new = combine_incoming(
                                &g.priors()[v as usize],
                                in_arcs.iter().map(|&a| cache_ref.message(g, a, prev)),
                            );
                            let diff = new.l1_diff(&prev[v as usize]);
                            local_msgs += in_arcs.len() as u64;
                            // SAFETY: active node ids are unique, so each
                            // scratch/diff slot has exactly one writer.
                            unsafe { scratch_shared.write(v as usize, new) };
                            unsafe { diffs_shared.write(v as usize, diff) };
                            if use_queue && diff >= qt {
                                // SAFETY: worker handle `i` is owned by this
                                // region index for the whole broadcast.
                                let qw = unsafe { &mut *qw_shared.ptr_at(i) };
                                qw.push(v);
                                if wake {
                                    for &a in g.out_arcs(v) {
                                        qw.push(g.arc(a).dst);
                                    }
                                }
                            }
                        }
                        // SAFETY: one slot per region index.
                        unsafe { msgs_shared.write(i, local_msgs) };
                    });
                    message_updates += chunk_msgs.iter().sum::<u64>();
                }
                node_updates += active.len() as u64;

                // Publish, in parallel on the same pool (disjoint indices).
                {
                    let beliefs = graph.beliefs_mut();
                    let shared = SharedSlice::new(beliefs);
                    let scratch_ref = &scratch;
                    let chunks_ref = &chunks;
                    pool.broadcast(&|i| {
                        let Some(chunk) = chunks_ref.get(i) else {
                            return;
                        };
                        for &v in *chunk {
                            // SAFETY: unique indices per chunk.
                            unsafe { shared.write(v as usize, scratch_ref[v as usize]) };
                        }
                    });
                }

                // Deterministic reduction: ascending node order, exactly the
                // float grouping of the sequential sweep. Residual mode
                // permutes `active`, so re-sort before summing to keep the
                // grouping (and thus the iteration trajectory) identical.
                if opts.residual_priority {
                    let mut ascending = active.to_vec();
                    ascending.sort_unstable();
                    ascending.iter().map(|&v| diffs[v as usize]).sum()
                } else {
                    active.iter().map(|&v| diffs[v as usize]).sum()
                }
            };

            if let Some(q) = &mut queue {
                if opts.residual_priority {
                    q.advance_by_residual(&diffs);
                } else {
                    q.advance();
                }
            }

            if trace.enabled() {
                iter_span.record(&[("delta", sum.into())]);
                trace.counter("queue_depth", queue_depth as f64);
                if let Some(q) = &queue {
                    trace.counter("queue_repopulated", q.len() as f64);
                }
            }
            drop(iter_span);
            per_iteration.push(IterationStats {
                delta: sum,
                node_updates: queue_depth,
                message_updates: message_updates - msgs_before,
                queue_depth,
                elapsed: iter_start.elapsed(),
            });

            if !tracker.record(sum) {
                break;
            }
        }

        let elapsed = start.elapsed();
        if trace.enabled() {
            emit_pool_metrics(trace, &pool, queue.as_ref(), elapsed);
            run_span.record(&[
                ("iterations", tracker.iterations().into()),
                ("converged", tracker.converged().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            final_delta: if tracker.last_sum().is_finite() {
                tracker.last_sum()
            } else {
                0.0
            },
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqNodeEngine;
    use credo_graph::generators::{kronecker, synthetic, GenOptions, PotentialKind};

    #[test]
    fn bitwise_matches_sequential_node_engine() {
        for threads in [1usize, 2, 4] {
            let mut g1 = synthetic(200, 800, &GenOptions::new(3).with_seed(17));
            let mut g2 = g1.clone();
            let s1 = SeqNodeEngine.run(&mut g1, &BpOptions::default()).unwrap();
            let s2 = ParNodeEngine
                .run(&mut g2, &BpOptions::default().with_threads(threads))
                .unwrap();
            assert_eq!(s1.iterations, s2.iterations, "threads={threads}");
            assert_eq!(s1.message_updates, s2.message_updates);
            assert_eq!(g1.beliefs(), g2.beliefs(), "threads={threads}");
        }
    }

    #[test]
    fn queue_mode_matches_sequential_queue_mode() {
        let mut g1 = synthetic(150, 450, &GenOptions::new(2).with_seed(8));
        let mut g2 = g1.clone();
        let s1 = SeqNodeEngine
            .run(&mut g1, &BpOptions::with_work_queue())
            .unwrap();
        let mut qopts = BpOptions::with_work_queue();
        qopts.threads = 3;
        let s2 = ParNodeEngine.run(&mut g2, &qopts).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(s1.node_updates, s2.node_updates);
        assert_eq!(g1.beliefs(), g2.beliefs());
    }

    #[test]
    fn residual_priority_changes_order_not_results() {
        let mut g1 = synthetic(150, 450, &GenOptions::new(2).with_seed(8));
        let mut g2 = g1.clone();
        let mut plain = BpOptions::with_work_queue();
        plain.threads = 2;
        let s1 = ParNodeEngine.run(&mut g1, &plain).unwrap();
        let residual = BpOptions::default()
            .with_residual_priority()
            .with_threads(2);
        let s2 = ParNodeEngine.run(&mut g2, &residual).unwrap();
        // Jacobi updates are order-independent: identical trajectories.
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(s1.node_updates, s2.node_updates);
        assert_eq!(g1.beliefs(), g2.beliefs());
    }

    #[test]
    fn per_edge_potentials_supported() {
        let opts = GenOptions::new(2)
            .with_seed(31)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let mut g1 = synthetic(60, 180, &opts);
        let mut g2 = g1.clone();
        SeqNodeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        ParNodeEngine
            .run(&mut g2, &BpOptions::default().with_threads(2))
            .unwrap();
        assert_eq!(g1.beliefs(), g2.beliefs());
    }

    #[test]
    fn hub_graphs_match_sequential() {
        let mut g1 = kronecker(7, 8, &GenOptions::new(2).with_seed(9));
        let mut g2 = g1.clone();
        SeqNodeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        ParNodeEngine
            .run(&mut g2, &BpOptions::default().with_threads(4))
            .unwrap();
        assert_eq!(g1.beliefs(), g2.beliefs());
    }

    #[test]
    fn observed_nodes_never_change() {
        let mut g = synthetic(50, 150, &GenOptions::new(2).with_seed(4));
        g.observe(7, 1);
        let before = g.beliefs()[7];
        ParNodeEngine
            .run(&mut g, &BpOptions::default().with_threads(2))
            .unwrap();
        assert_eq!(g.beliefs()[7], before);
    }
}
