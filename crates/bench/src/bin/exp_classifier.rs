//! §3.7 / Figures 4–6 — the classifier's features and structure.
//!
//! * Figure 4: correlations among the five features and the label.
//! * Figure 5: random-forest feature importances.
//! * Figure 6: a depth-2 decision tree on {num_nodes, nodes_to_edges}
//!   reaching ≥89% F1.
//! * §3.7's PCA note: preprocessing with PCA *worsens* the F1 score.

use credo::BpOptions;
use credo_bench::dataset::{load_or_build, to_paradigm_dataset};
use credo_bench::report::save_json;
use credo_bench::scale_from_args;
use credo_gpusim::PASCAL_GTX1070;
use credo_graph::FEATURE_NAMES;
use credo_ml::{
    correlation_matrix, f1_macro, k_fold_indices, Classifier, Dataset, DecisionTree, Pca,
    RandomForest, StandardScaler,
};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    correlations: Vec<Vec<f64>>,
    forest_importances: Vec<f64>,
    forest_f1: f64,
    depth2_tree_f1: f64,
    depth2_tree: String,
    pca_f1: f64,
}

fn main() {
    let scale = scale_from_args();
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("§3.7 / Fig 4–6: classifier features (scale: {scale:?})"),
    );
    credo_bench::progress(
        &prog,
        "Benchmarking all implementations to label the dataset…",
    );
    let opts = credo_bench::apply_max_iters(BpOptions::default());
    let records = load_or_build(scale, PASCAL_GTX1070, &opts, 3, true);
    // §3.7 labels paradigms: "a label of Node for when the a Node
    // implementation is best … and a label of Edge otherwise."
    let data = to_paradigm_dataset(&records);
    println!(
        "\nDataset: {} configurations, {} Node / {} Edge labels\n",
        data.len(),
        data.y.iter().filter(|&&y| y == 1).count(),
        data.y.iter().filter(|&&y| y == 0).count()
    );

    // Figure 4: correlation heat map over features + label.
    let mut columns: Vec<Vec<f64>> = (0..FEATURE_NAMES.len())
        .map(|f| data.x.iter().map(|r| r[f]).collect())
        .collect();
    columns.push(data.y.iter().map(|&y| y as f64).collect());
    let corr = correlation_matrix(&columns);
    let mut names: Vec<&str> = FEATURE_NAMES.to_vec();
    names.push("label");
    println!("Figure 4 — feature/label correlations:");
    print!("{:>18}", "");
    for n in &names {
        print!("{n:>18}");
    }
    println!();
    for (i, row) in corr.iter().enumerate() {
        print!("{:>18}", names[i]);
        for v in row {
            print!("{v:>18.3}");
        }
        println!();
    }

    // With only a handful of Edge labels, a single split is a coin toss;
    // report 3-fold cross-validated F1 (the paper's Fig 10 methodology).
    let cv_f1 = |fit: &mut dyn FnMut(&Dataset) -> Box<dyn Classifier>| -> f64 {
        let folds = k_fold_indices(data.len(), 3, 0xC3ED0);
        let mut scores = Vec::new();
        for (tr, te) in folds {
            let train = data.subset(&tr);
            let test = data.subset(&te);
            let model = fit(&train);
            scores.push(f1_macro(&test.y, &model.predict_batch(&test.x)));
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    };

    // Figure 5: random-forest importances (paper-tuned forest).
    let mut forest = RandomForest::paper_tuned();
    forest.fit(&data.x, &data.y);
    let forest_f1 = cv_f1(&mut |train| {
        let mut f = RandomForest::paper_tuned();
        f.fit(&train.x, &train.y);
        Box::new(f)
    });
    println!("\nFigure 5 — random forest feature importances (F1 {forest_f1:.3}):");
    for (name, imp) in FEATURE_NAMES.iter().zip(forest.feature_importances()) {
        println!("  {name:>18}: {:>5.1}%", imp * 100.0);
    }

    // Figure 6: depth-2 tree on num_nodes + nodes_to_edges only.
    let mut tree = DecisionTree::new(2).with_feature_subset(vec![0, 1]);
    tree.fit(&data.x, &data.y);
    let tree_f1 = cv_f1(&mut |train| {
        let mut t = DecisionTree::new(2).with_feature_subset(vec![0, 1]);
        t.fit(&train.x, &train.y);
        Box::new(t)
    });
    let rendered = tree.root().expect("fitted").render(&FEATURE_NAMES);
    println!("\nFigure 6 — depth-2 decision tree on (num_nodes, nodes_to_edges), F1 {tree_f1:.3}:");
    println!("{rendered}");
    println!("(paper: 89.5% F1 for the depth-2 tree, 94.7% for the tuned forest)");

    // §3.7: PCA preprocessing hurts.
    let pca_f1 = cv_f1(&mut |train| {
        let scaler = StandardScaler::fit(&train.x);
        let pca = Pca::fit(&scaler.transform(&train.x), FEATURE_NAMES.len());
        struct PcaForest {
            scaler: StandardScaler,
            pca: Pca,
            forest: RandomForest,
        }
        impl Classifier for PcaForest {
            fn fit(&mut self, _: &[Vec<f64>], _: &[usize]) {}
            fn predict(&self, row: &[f64]) -> usize {
                self.forest
                    .predict(&self.pca.transform_row(&self.scaler.transform_row(row)))
            }
        }
        let mut forest = RandomForest::paper_tuned();
        forest.fit(&pca.transform(&scaler.transform(&train.x)), &train.y);
        Box::new(PcaForest {
            scaler,
            pca,
            forest,
        })
    });
    println!("\nPCA-preprocessed forest F1: {pca_f1:.3} (raw features: {forest_f1:.3}; paper: PCA is worse)");

    let out = Output {
        correlations: corr,
        forest_importances: forest.feature_importances().to_vec(),
        forest_f1,
        depth2_tree_f1: tree_f1,
        depth2_tree: rendered,
        pca_f1,
    };
    if let Ok(p) = save_json("classifier_features", &out) {
        println!("JSON: {}", p.display());
    }
    if let Ok(p) = save_json("classifier_dataset", &records) {
        println!("Dataset cached: {}", p.display());
    }
}
