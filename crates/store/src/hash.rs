//! Content hashing for cache keys.
//!
//! The **structural hash** covers everything that determines a compiled
//! plan's *structure* — node cardinalities, the arc list, and the joint
//! probability matrices — and deliberately excludes priors and observed
//! flags. Evidence lives in a separate state blob, so observing a node or
//! re-binding priors leaves the (usually much larger) structural blob's
//! address unchanged and the cache reuses it byte-for-byte.
//!
//! Composite artifacts (a sharded plan's meta + K shard blobs, a plan's
//! body + state pair) are identified by a **Merkle root**: the hash of the
//! concatenated constituent hashes. Changing one shard re-derives one leaf
//! and the root; the other K-1 blobs keep their addresses and are reused.

use credo_graph::{BeliefGraph, PotentialStore};
use murmur3::Hasher128;

const STRUCTURAL_SEED: u32 = 0xC11ED0;

/// Hashes the structure of `g`: cardinalities, arcs and potentials, but
/// **not** priors or observed flags (those are evidence, stored
/// separately).
pub fn structural_hash(g: &BeliefGraph) -> u128 {
    let mut h = Hasher128::with_seed(STRUCTURAL_SEED);
    h.update(b"credo-structural-v1");
    h.update(&(g.num_nodes() as u64).to_le_bytes());
    for v in 0..g.num_nodes() {
        h.update(&(g.cardinality(v as u32) as u32).to_le_bytes());
    }
    h.update(&(g.num_arcs() as u64).to_le_bytes());
    for a in g.arcs() {
        h.update(&a.src.to_le_bytes());
        h.update(&a.dst.to_le_bytes());
        h.update(&[a.reverse as u8]);
    }
    match g.potentials() {
        PotentialStore::Shared { forward, .. } => {
            h.update(b"shared");
            hash_matrix(&mut h, forward);
        }
        PotentialStore::PerEdge(ms) => {
            h.update(b"per-edge");
            for m in ms {
                hash_matrix(&mut h, m);
            }
        }
    }
    h.finish_u128()
}

fn hash_matrix(h: &mut Hasher128, m: &credo_graph::JointMatrix) {
    h.update(&(m.rows() as u32).to_le_bytes());
    h.update(&(m.cols() as u32).to_le_bytes());
    for &v in m.data() {
        h.update(&v.to_bits().to_le_bytes());
    }
}

/// The Merkle root over an ordered list of constituent content hashes.
pub fn merkle_root(leaves: &[u128]) -> u128 {
    let mut h = Hasher128::with_seed(STRUCTURAL_SEED);
    h.update(b"credo-merkle-v1");
    h.update(&(leaves.len() as u64).to_le_bytes());
    for leaf in leaves {
        h.update(&leaf.to_le_bytes());
    }
    h.finish_u128()
}

/// `u128` → 32 lowercase hex digits (the on-disk spelling of every hash).
pub fn hex_u128(v: u128) -> String {
    format!("{v:032x}")
}

/// Parses the 32-hex-digit spelling back; `None` on anything else.
pub fn parse_hex_u128(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::generators::{self, GenOptions};

    fn grid() -> BeliefGraph {
        generators::grid(4, 4, &GenOptions::new(2).with_seed(7))
    }

    #[test]
    fn evidence_does_not_change_the_structural_hash() {
        let mut g = grid();
        let before = structural_hash(&g);
        g.observe(3, 1);
        assert_eq!(structural_hash(&g), before, "observe must not re-key");
        g.priors_mut()[0] = credo_graph::Belief::from_slice(&[0.9, 0.1]);
        assert_eq!(structural_hash(&g), before, "priors must not re-key");
    }

    #[test]
    fn structure_changes_do_re_key() {
        use credo_graph::generators::PotentialKind;
        let a = structural_hash(&grid());
        let opts = GenOptions::new(2)
            .with_seed(7)
            .with_potentials(PotentialKind::SharedSmoothing(0.3));
        let b = structural_hash(&generators::grid(4, 4, &opts));
        let c = structural_hash(&generators::grid(4, 5, &GenOptions::new(2).with_seed(7)));
        assert_ne!(a, b, "different potentials");
        assert_ne!(a, c, "different topology");
    }

    #[test]
    fn merkle_root_is_order_and_content_sensitive() {
        let r = merkle_root(&[1, 2, 3]);
        assert_ne!(r, merkle_root(&[3, 2, 1]));
        assert_ne!(r, merkle_root(&[1, 2]));
        assert_eq!(r, merkle_root(&[1, 2, 3]));
    }

    #[test]
    fn hex_roundtrip() {
        for v in [0u128, 1, u128::MAX, 0xDEAD_BEEF] {
            assert_eq!(parse_hex_u128(&hex_u128(v)), Some(v));
        }
        assert_eq!(parse_hex_u128("xyz"), None);
        assert_eq!(parse_hex_u128(&"0".repeat(33)), None);
    }
}
