//! Offline stand-in for `criterion`.
//!
//! Mirrors the registration surface the bench targets use
//! (`criterion_group!`/`criterion_main!`, groups, `iter`,
//! `iter_batched`, `BenchmarkId`) but measures with a plain
//! best-of-N wall clock instead of criterion's statistical engine:
//! each benchmark is warmed up once, then timed over a handful of
//! batches and the fastest per-iteration time is reported.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every measurement taken this process, in registration order, so
/// [`dump_json`] can persist the run. `(label, best nanoseconds)`.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Writes all recorded measurements as a JSON array to the path in the
/// `CRITERION_JSON` environment variable, if set. Called by the
/// `criterion_main!`-generated `main` after every group has run; a no-op
/// without the variable, so interactive `cargo bench` output is unchanged.
pub fn dump_json() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"best_ns\": {}}}{}\n",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            ns,
            sep
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    } else {
        println!("criterion JSON: {path}");
    }
}

/// Placeholder module so `criterion::measurement::WallTime` style paths
/// resolve if a bench ever names them.
pub mod measurement {
    pub struct WallTime;
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: Some(self),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for &String {
    fn into_benchmark_id(self) -> BenchmarkId {
        self.clone().into_benchmark_id()
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Handed to benchmark closures; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    batches: u32,
    iters_per_batch: u64,
    best: Option<Duration>,
}

impl Bencher {
    fn new(batches: u32, iters_per_batch: u64) -> Self {
        Bencher {
            batches,
            iters_per_batch,
            best: None,
        }
    }

    fn record(&mut self, per_iter: Duration) {
        self.best = Some(match self.best {
            Some(best) if best <= per_iter => best,
            _ => per_iter,
        });
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            self.record(start.elapsed() / self.iters_per_batch as u32);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.batches {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.record(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id.into_benchmark_id(), self.sample_size, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            id.into_benchmark_id(),
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            id.into_benchmark_id(),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: BenchmarkId, samples: usize, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.render()),
        None => id.render(),
    };
    // Keep runtimes modest: a few timed batches, one iteration each.
    let batches = samples.clamp(2, 20) as u32;
    let mut bencher = Bencher::new(batches, 1);
    f(&mut bencher);
    match bencher.best {
        Some(best) => {
            println!("{label:<50} best of {batches}: {}", fmt_duration(best));
            RESULTS.lock().unwrap().push((label, best.as_nanos()));
        }
        None => println!("{label:<50} (no measurement recorded)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::dump_json();
        }
    };
}

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, but still widely imported).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
