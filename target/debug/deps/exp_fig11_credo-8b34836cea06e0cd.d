/root/repo/target/debug/deps/exp_fig11_credo-8b34836cea06e0cd.d: crates/bench/src/bin/exp_fig11_credo.rs

/root/repo/target/debug/deps/exp_fig11_credo-8b34836cea06e0cd: crates/bench/src/bin/exp_fig11_credo.rs

crates/bench/src/bin/exp_fig11_credo.rs:
