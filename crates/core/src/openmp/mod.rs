//! OpenMP-analogue CPU-parallel engines (§2.4).
//!
//! The paper parallelizes its optimized C loops with `#pragma omp parallel
//! for` regions and finds the fork/join overhead of those regions swamps
//! the available work ("there is simply not enough work per thread to
//! justify the overhead of spinning and shutting down threads"). These
//! engines reproduce that execution model honestly: every parallel region
//! spawns OS threads and joins them, paying the same per-region costs, and
//! the edge paradigm combines messages with the same CAS-loop atomics a
//! `#pragma omp atomic` would lower to.

mod edge;
mod node;

pub use edge::OpenMpEdgeEngine;
pub use node::OpenMpNodeEngine;

use std::sync::atomic::{AtomicU32, Ordering};

/// Resolves the thread count: `opts.threads`, or all available cores.
pub(crate) fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A shareable mutable slice for scatter-writes to *disjoint* indices from
/// multiple threads (the `omp parallel for` write pattern over an output
/// array).
pub(crate) struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes go to disjoint indices by caller contract; the raw pointer
// itself is safe to send/share.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No two threads may write the same index during one parallel region,
    /// and nothing may read the index concurrently.
    #[inline]
    pub(crate) unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: caller guarantees disjointness; bounds asserted above.
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Raw pointer to `index`, for a read-then-overwrite by the same owning
    /// thread.
    ///
    /// # Safety
    /// Same contract as [`SharedSlice::write`]: the index must be owned by
    /// exactly one thread for the duration of the region.
    #[inline]
    pub(crate) unsafe fn ptr_at(&self, index: usize) -> *mut T {
        debug_assert!(index < self.len);
        // SAFETY: bounds asserted; aliasing is the caller's contract.
        unsafe { self.ptr.add(index) }
    }
}

/// Atomic multiply of an `f32` stored in an [`AtomicU32`] — the CAS loop a
/// GPU `atomicCAS`-based float multiply (or an `omp atomic` update on a
/// float product) performs. Returns the number of CAS retries.
#[inline]
pub(crate) fn atomic_mul_f32(cell: &AtomicU32, factor: f32) -> u32 {
    let mut retries = 0;
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) * factor).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return retries,
            Err(observed) => {
                cur = observed;
                retries += 1;
            }
        }
    }
}

/// Splits `items` into at most `threads` contiguous chunks of near-equal
/// size (empty input yields no chunks).
pub(crate) fn chunks_for<T>(items: &[T], threads: usize) -> impl Iterator<Item = &[T]> {
    let per = items.len().div_ceil(threads.max(1)).max(1);
    items.chunks(per)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn atomic_mul_is_a_multiply() {
        let cell = AtomicU32::new(2.0f32.to_bits());
        atomic_mul_f32(&cell, 3.5);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 7.0);
    }

    #[test]
    fn atomic_mul_under_contention_is_correct() {
        // 8 threads × 1000 multiplies by x then 1/x nets out to ~1.
        let cell = AtomicU32::new(1.0f32.to_bits());
        std::thread::scope(|s| {
            for t in 0..8 {
                let cell = &cell;
                s.spawn(move || {
                    let f = 1.0 + (t as f32 + 1.0) * 1e-3;
                    for _ in 0..500 {
                        atomic_mul_f32(cell, f);
                        atomic_mul_f32(cell, 1.0 / f);
                    }
                });
            }
        });
        let v = f32::from_bits(cell.load(Ordering::Relaxed));
        assert!((v - 1.0).abs() < 1e-2, "got {v}");
    }

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut data = vec![0u32; 64];
        let shared = SharedSlice::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = &shared;
                s.spawn(move || {
                    for i in (t..64).step_by(4) {
                        // SAFETY: each thread owns indices ≡ t (mod 4).
                        unsafe { shared.write(i, i as u32) };
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn chunking_covers_everything() {
        let items: Vec<u32> = (0..10).collect();
        let collected: Vec<u32> = chunks_for(&items, 3).flatten().copied().collect();
        assert_eq!(collected, items);
        assert!(chunks_for(&items, 3).count() <= 4);
        assert_eq!(chunks_for(&items, 100).count(), 10);
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(thread_count(4), 4);
        assert!(thread_count(0) >= 1);
    }
}
