//! chrome://tracing (`trace_event`) exporter.
//!
//! Produces the JSON object format: `{"traceEvents": [...],
//! "displayTimeUnit": "ms"}` with complete (`"ph": "X"`) events, loadable
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Wall-clock records render under pid 1 ("host"); simulated-timeline
//! tracks (the gpusim device and PCIe bus) render under pid 2
//! ("gpusim"), one thread lane per track, because their microseconds are
//! *simulated* time and must not share an axis origin with the host's.

use crate::buffer::{Record, HOST_TRACK};
use serde::Value;

const HOST_PID: u64 = 1;
const SIM_PID: u64 = 2;

fn meta(name: &str, pid: u64, tid: Option<u64>, arg_name: &str) -> Value {
    let mut entries = vec![
        ("name".to_string(), Value::Str(name.into())),
        ("ph".to_string(), Value::Str("M".into())),
        ("pid".to_string(), Value::UInt(pid)),
    ];
    if let Some(tid) = tid {
        entries.push(("tid".to_string(), Value::UInt(tid)));
    }
    entries.push((
        "args".to_string(),
        Value::Object(vec![("name".to_string(), Value::Str(arg_name.to_string()))]),
    ));
    Value::Object(entries)
}

fn args_object(fields: &[crate::OwnedField]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|f| (f.key.to_string(), f.value.to_value()))
            .collect(),
    )
}

/// Renders `records` as a chrome trace_event JSON document.
pub fn to_chrome_json(records: &[Record]) -> String {
    // Track -> (pid, tid). Host lane is tid 1 of pid 1; each simulated
    // track gets its own tid under pid 2, in order of first appearance.
    let mut sim_tracks: Vec<&'static str> = Vec::new();
    for record in records {
        if let Record::Span { track, .. } = record {
            if *track != HOST_TRACK && !sim_tracks.contains(track) {
                sim_tracks.push(track);
            }
        }
    }

    let mut events: Vec<Value> = Vec::with_capacity(records.len() + 4);
    events.push(meta("process_name", HOST_PID, None, "host (wall clock)"));
    events.push(meta("thread_name", HOST_PID, Some(1), HOST_TRACK));
    if !sim_tracks.is_empty() {
        events.push(meta(
            "process_name",
            SIM_PID,
            None,
            "gpusim (simulated time)",
        ));
        for (i, track) in sim_tracks.iter().enumerate() {
            events.push(meta("thread_name", SIM_PID, Some(i as u64 + 1), track));
        }
    }

    for record in records {
        match record {
            Record::Span {
                name,
                track,
                start_us,
                dur_us,
                fields,
            } => {
                let (pid, tid) = if *track == HOST_TRACK {
                    (HOST_PID, 1)
                } else {
                    let i = sim_tracks.iter().position(|t| t == track).unwrap();
                    (SIM_PID, i as u64 + 1)
                };
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str((*name).into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::Float(*start_us)),
                    ("dur".into(), Value::Float(dur_us.max(0.0))),
                    ("pid".into(), Value::UInt(pid)),
                    ("tid".into(), Value::UInt(tid)),
                    ("args".into(), args_object(fields)),
                ]));
            }
            Record::Event {
                name,
                ts_us,
                fields,
            } => {
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str((*name).into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("s".into(), Value::Str("t".into())),
                    ("ts".into(), Value::Float(*ts_us)),
                    ("pid".into(), Value::UInt(HOST_PID)),
                    ("tid".into(), Value::UInt(1)),
                    ("args".into(), args_object(fields)),
                ]));
            }
            Record::Counter { name, ts_us, value } => {
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str((*name).into())),
                    ("ph".into(), Value::Str("C".into())),
                    ("ts".into(), Value::Float(*ts_us)),
                    ("pid".into(), Value::UInt(HOST_PID)),
                    (
                        "args".into(),
                        Value::Object(vec![("value".to_string(), Value::Float(*value))]),
                    ),
                ]));
            }
        }
    }

    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use crate::TraceBuffer;
    use std::sync::Arc;
    use tracing::Dispatch;

    #[test]
    fn chrome_doc_parses_and_names_tracks() {
        let buffer = Arc::new(TraceBuffer::new());
        let trace = Dispatch::new(buffer.clone());
        {
            let _run = trace.span("run", &[]);
            let _iter = trace.span("iteration", &[("iter", 0u64.into())]);
        }
        trace.timed_span("gpu", "kernel:update", 0.0, 50.0, &[]);
        trace.timed_span("pcie", "h2d", 0.0, 10.0, &[("bytes", 4096u64.into())]);

        let doc: serde::Value = serde_json::from_str(&buffer.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 host meta + 1 sim process meta + 2 sim thread meta + 4 records.
        assert_eq!(events.len(), 9);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 4);
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        // Simulated tracks live in their own process.
        let kernel = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("kernel:update"))
            .unwrap();
        assert_eq!(kernel.get("pid").unwrap().as_u64(), Some(2));
    }
}
