/root/repo/target/release/deps/exp_parsers-356724b3ce64468a.d: crates/bench/src/bin/exp_parsers.rs Cargo.toml

/root/repo/target/release/deps/libexp_parsers-356724b3ce64468a.rmeta: crates/bench/src/bin/exp_parsers.rs Cargo.toml

crates/bench/src/bin/exp_parsers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
