/root/repo/target/debug/deps/credo_bench-f31b774bc1cfff45.d: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/credo_bench-f31b774bc1cfff45: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/dataset.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/suite.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
