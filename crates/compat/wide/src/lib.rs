//! Offline stand-in for the `wide` crate: the subset Credo's hot paths use.
//!
//! [`f32x8`] is an 8-lane single-precision SIMD vector. On x86-64 builds
//! with AVX enabled at compile time (`-C target-cpu=native` or
//! `-C target-feature=+avx`) the lane operations lower to one `__m256`
//! instruction each via `std::arch`; everywhere else a portable
//! fixed-size-array implementation is used, which LLVM auto-vectorizes to
//! the widest units the baseline target offers (two 128-bit ops under the
//! x86-64 SSE2 baseline). Both paths perform the same IEEE operations
//! lane-by-lane, so results are bit-identical across backends.
//!
//! Lane operations are element-wise only — no horizontal reductions are
//! provided on the fast path. Credo's kernels keep reductions (sums,
//! maxima) in scalar ascending-lane order so that vectorized and scalar
//! code produce bit-identical results; [`f32x8::to_array`] hands the lanes
//! back for exactly that.

#![allow(non_camel_case_types)]

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub, SubAssign};

/// Number of lanes in an [`f32x8`].
pub const LANES: usize = 8;

/// An 8-lane `f32` SIMD vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f32x8 {
    lanes: [f32; LANES],
}

impl f32x8 {
    /// All lanes zero.
    pub const ZERO: f32x8 = f32x8 { lanes: [0.0; 8] };
    /// All lanes one.
    pub const ONE: f32x8 = f32x8 { lanes: [1.0; 8] };

    /// Broadcasts `v` into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        f32x8 { lanes: [v; LANES] }
    }

    /// Builds a vector from an array of lanes.
    #[inline(always)]
    pub fn new(lanes: [f32; LANES]) -> Self {
        f32x8 { lanes }
    }

    /// Loads 8 lanes from the start of `slice`.
    ///
    /// # Panics
    /// Panics if `slice.len() < 8`.
    #[inline(always)]
    pub fn from_slice(slice: &[f32]) -> Self {
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&slice[..LANES]);
        f32x8 { lanes }
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        self.lanes
    }

    /// Stores the lanes into the start of `slice`.
    ///
    /// # Panics
    /// Panics if `slice.len() < 8`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f32]) {
        slice[..LANES].copy_from_slice(&self.lanes);
    }

    /// Lane-wise maximum. For the non-negative finite values Credo feeds
    /// it, this matches `f32::max` in every lane on both backends.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
        // SAFETY: the `avx` target feature is statically enabled.
        unsafe {
            use core::arch::x86_64::*;
            let a = _mm256_loadu_ps(self.lanes.as_ptr());
            let b = _mm256_loadu_ps(rhs.lanes.as_ptr());
            let mut out = f32x8::ZERO;
            _mm256_storeu_ps(out.lanes.as_mut_ptr(), _mm256_max_ps(a, b));
            out
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
        {
            let mut out = self;
            for (o, r) in out.lanes.iter_mut().zip(&rhs.lanes) {
                *o = o.max(*r);
            }
            out
        }
    }

    /// Lane-wise minimum (same caveats as [`f32x8::max`]).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = self;
        for (o, r) in out.lanes.iter_mut().zip(&rhs.lanes) {
            *o = o.min(*r);
        }
        out
    }
}

impl From<[f32; LANES]> for f32x8 {
    #[inline(always)]
    fn from(lanes: [f32; LANES]) -> Self {
        f32x8 { lanes }
    }
}

impl From<f32x8> for [f32; LANES] {
    #[inline(always)]
    fn from(v: f32x8) -> Self {
        v.lanes
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt, $intrinsic:ident) => {
        impl $trait for f32x8 {
            type Output = f32x8;
            #[inline(always)]
            fn $method(self, rhs: f32x8) -> f32x8 {
                #[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
                // SAFETY: the `avx` target feature is statically enabled.
                unsafe {
                    use core::arch::x86_64::*;
                    let a = _mm256_loadu_ps(self.lanes.as_ptr());
                    let b = _mm256_loadu_ps(rhs.lanes.as_ptr());
                    let mut out = f32x8::ZERO;
                    _mm256_storeu_ps(out.lanes.as_mut_ptr(), $intrinsic(a, b));
                    out
                }
                #[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
                {
                    let mut out = self;
                    for (o, r) in out.lanes.iter_mut().zip(&rhs.lanes) {
                        *o = *o $op *r;
                    }
                    out
                }
            }
        }
    };
}

lanewise_binop!(Add, add, +, _mm256_add_ps);
lanewise_binop!(Sub, sub, -, _mm256_sub_ps);
lanewise_binop!(Mul, mul, *, _mm256_mul_ps);
lanewise_binop!(Div, div, /, _mm256_div_ps);

impl AddAssign for f32x8 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: f32x8) {
        *self = *self + rhs;
    }
}

impl SubAssign for f32x8 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: f32x8) {
        *self = *self - rhs;
    }
}

impl MulAssign for f32x8 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f32x8) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn mul(self, rhs: f32) -> f32x8 {
        self * f32x8::splat(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_roundtrip() {
        let v = f32x8::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 8]);
        let arr = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(f32x8::new(arr).to_array(), arr);
        assert_eq!(f32x8::from(arr), f32x8::new(arr));
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = f32x8::new([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = f32x8::splat(2.0);
        assert_eq!((a + b).to_array()[0], 3.0);
        assert_eq!((a - b).to_array()[7], 6.0);
        assert_eq!((a * b).to_array()[2], 6.0);
        assert_eq!((a / b).to_array()[3], 2.0);
        let mut c = a;
        c *= b;
        assert_eq!(c, a * b);
        c += b;
        assert_eq!(c.to_array()[0], 4.0);
        c -= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn lanewise_ops_match_scalar_bits() {
        // The backend contract: every lane op produces exactly the scalar
        // IEEE result, so SIMD and scalar kernels agree to the bit.
        let a = f32x8::new([0.1, 1e-20, 3.7e8, 0.333, 9.99, 1e-7, 0.5, 2.0]);
        let b = f32x8::new([0.9, 7.0, 1e-3, 3.0, 0.1, 1e7, 0.25, 0.125]);
        let prod = (a * b).to_array();
        let sum = (a + b).to_array();
        for i in 0..LANES {
            assert_eq!(
                prod[i].to_bits(),
                (a.to_array()[i] * b.to_array()[i]).to_bits()
            );
            assert_eq!(
                sum[i].to_bits(),
                (a.to_array()[i] + b.to_array()[i]).to_bits()
            );
        }
    }

    #[test]
    fn max_and_min_are_lanewise() {
        let a = f32x8::new([1.0, 5.0, 2.0, 8.0, 0.0, 3.0, 7.0, 4.0]);
        let b = f32x8::splat(3.5);
        assert_eq!(
            a.max(b).to_array(),
            [3.5, 5.0, 3.5, 8.0, 3.5, 3.5, 7.0, 4.0]
        );
        assert_eq!(
            a.min(b).to_array(),
            [1.0, 3.5, 2.0, 3.5, 0.0, 3.0, 3.5, 3.5]
        );
    }

    #[test]
    fn slice_io() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = f32x8::from_slice(&data[1..]);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut out = vec![0.0f32; 9];
        v.write_to_slice(&mut out[1..]);
        assert_eq!(&out[1..9], v.to_array());
        assert_eq!(out[0], 0.0);
    }
}
