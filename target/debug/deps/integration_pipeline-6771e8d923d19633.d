/root/repo/target/debug/deps/integration_pipeline-6771e8d923d19633.d: crates/credo/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-6771e8d923d19633: crates/credo/../../tests/integration_pipeline.rs

crates/credo/../../tests/integration_pipeline.rs:
