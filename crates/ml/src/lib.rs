//! # credo-ml
//!
//! From-scratch implementations of the scikit-learn classifiers the paper
//! uses (§3.7, §4.3): decision trees and random forests (the winners),
//! plus the comparison field of Figure 10 — Gaussian naive Bayes, k-NN,
//! linear SVM, a multi-layer perceptron and gradient boosting — along with
//! PCA, feature scaling, train/test splitting, k-fold cross-validation and
//! F1 scoring.
//!
//! Everything is deterministic given a seed; datasets here are tiny (~100
//! benchmark graphs × 5 features), so clarity beats asymptotics.

#![warn(missing_docs)]

mod dataset;
mod forest;
mod gboost;
mod knn;
mod metrics;
mod mlp;
mod naive_bayes;
mod pca;
mod scaler;
mod svm;
mod tree;

pub use dataset::{k_fold_indices, train_test_split, Dataset};
pub use forest::RandomForest;
pub use gboost::GradientBoosting;
pub use knn::KNearestNeighbors;
pub use metrics::{accuracy, confusion_matrix, f1_macro, precision_recall_f1};
pub use mlp::MlpClassifier;
pub use naive_bayes::GaussianNaiveBayes;
pub use pca::{correlation_matrix, Pca};
pub use scaler::StandardScaler;
pub use svm::LinearSvm;
pub use tree::{DecisionTree, TreeNode};

/// A trained classifier: fit on rows of `f64` features with `usize` class
/// labels, predict one row at a time.
pub trait Classifier {
    /// Fits the model. `n_classes` is `max(y) + 1`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]);

    /// Predicts the class of one feature row.
    fn predict(&self, row: &[f64]) -> usize;

    /// Predicts a batch.
    fn predict_batch(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| self.predict(r)).collect()
    }
}
