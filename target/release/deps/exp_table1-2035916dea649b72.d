/root/repo/target/release/deps/exp_table1-2035916dea649b72.d: crates/bench/src/bin/exp_table1.rs Cargo.toml

/root/repo/target/release/deps/libexp_table1-2035916dea649b72.rmeta: crates/bench/src/bin/exp_table1.rs Cargo.toml

crates/bench/src/bin/exp_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
