//! 2D lattice generator for the image-correction use case (§4: "mimics
//! image correction with the beliefs in each bit's value in a 32-bit
//! image's pixels").

use super::{assemble, GenOptions};
use crate::BeliefGraph;

/// A `width × height` 4-connected grid (each pixel linked to its right and
/// down neighbours) with undirected smoothing edges. Node `(x, y)` has id
/// `y * width + x`.
pub fn grid(width: usize, height: usize, opts: &GenOptions) -> BeliefGraph {
    assert!(
        width >= 1 && height >= 1,
        "grid dimensions must be positive"
    );
    let n = width * height;
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..height {
        for x in 0..width {
            let id = (y * width + x) as u32;
            if x + 1 < width {
                edges.push((id, id + 1));
            }
            if y + 1 < height {
                edges.push((id, id + width as u32));
            }
        }
    }
    let mut rng = opts.rng();
    assemble(n, &edges, opts, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edge_count() {
        // w*h nodes, (w-1)*h + w*(h-1) edges
        let g = grid(4, 3, &GenOptions::new(2));
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = grid(5, 5, &GenOptions::new(2));
        // Corner (0,0): 2 neighbours; interior (2,2): 4 neighbours.
        assert_eq!(g.in_arcs(0).len(), 2);
        assert_eq!(g.in_arcs(12).len(), 4);
    }

    #[test]
    fn single_cell_grid() {
        let g = grid(1, 1, &GenOptions::new(2));
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn one_row_grid_is_a_path() {
        let g = grid(6, 1, &GenOptions::new(2));
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.in_arcs(0).len(), 1);
        assert_eq!(g.in_arcs(3).len(), 2);
    }
}
