//! Criterion benchmarks for classifier training and inference at the
//! dataset scale the paper uses (~100 samples × 5 features).

use credo_ml::{Classifier, DecisionTree, RandomForest};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let nodes: f64 = rng.gen_range(10.0..2_000_000.0);
        let ratio: f64 = rng.gen_range(0.02..1.0);
        let beliefs: f64 = [2.0, 3.0, 32.0][rng.gen_range(0..3usize)];
        let imbalance: f64 = rng.gen_range(0.5..4.0);
        let skew: f64 = rng.gen_range(0.01..1.0);
        let label = usize::from(nodes > 100_000.0) * 2 + usize::from(ratio < 0.2);
        x.push(vec![nodes, ratio, beliefs, imbalance, skew]);
        y.push(label);
    }
    (x, y)
}

fn bench_forest_fit(c: &mut Criterion) {
    let (x, y) = dataset(100);
    c.bench_function("random_forest_fit_100x5", |b| {
        b.iter(|| {
            let mut f = RandomForest::paper_tuned();
            f.fit(black_box(&x), black_box(&y));
            black_box(f)
        });
    });
}

fn bench_tree_fit(c: &mut Criterion) {
    let (x, y) = dataset(100);
    c.bench_function("decision_tree_fit_100x5", |b| {
        b.iter(|| {
            let mut t = DecisionTree::new(6);
            t.fit(black_box(&x), black_box(&y));
            black_box(t)
        });
    });
}

fn bench_forest_predict(c: &mut Criterion) {
    let (x, y) = dataset(100);
    let mut f = RandomForest::paper_tuned();
    f.fit(&x, &y);
    let row = x[0].clone();
    c.bench_function("random_forest_predict", |b| {
        b.iter(|| black_box(f.predict(black_box(&row))));
    });
}

criterion_group!(
    benches,
    bench_forest_fit,
    bench_tree_fit,
    bench_forest_predict
);
criterion_main!(benches);
