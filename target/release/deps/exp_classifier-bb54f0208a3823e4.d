/root/repo/target/release/deps/exp_classifier-bb54f0208a3823e4.d: crates/bench/src/bin/exp_classifier.rs

/root/repo/target/release/deps/exp_classifier-bb54f0208a3823e4: crates/bench/src/bin/exp_classifier.rs

crates/bench/src/bin/exp_classifier.rs:
