//! Engine construction and measured runs.

use credo::engines::{
    CudaEdgeEngine, CudaNodeEngine, ParEdgeEngine, ParNodeEngine, RelaxedNodeEngine, SeqEdgeEngine,
    SeqNodeEngine,
};
use credo::{BpEngine, BpOptions, BpStats, EngineError, Implementation};
use credo_gpusim::{ArchProfile, Device};
use credo_graph::BeliefGraph;
use serde::Serialize;

/// One measured run, ready for the report writer.
#[derive(Clone, Debug, Serialize)]
pub struct RunRecord {
    /// Graph abbreviation.
    pub graph: String,
    /// Belief cardinality.
    pub beliefs: usize,
    /// Engine display name.
    pub engine: String,
    /// Reported (simulated for CUDA) seconds.
    pub seconds: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Whether convergence (not the cap) ended the run.
    pub converged: bool,
    /// Node updates performed.
    pub node_updates: u64,
    /// Messages computed.
    pub message_updates: u64,
    /// CAS retries burned on atomic float multiplies (0 for engines that
    /// use deterministic reductions instead).
    pub atomic_retries: u64,
}

impl RunRecord {
    /// Builds a record from engine stats.
    pub fn new(graph: &str, beliefs: usize, stats: &BpStats) -> Self {
        RunRecord {
            graph: graph.to_string(),
            beliefs,
            engine: stats.engine.to_string(),
            seconds: stats.reported_time.as_secs_f64(),
            iterations: stats.iterations,
            converged: stats.converged,
            node_updates: stats.node_updates,
            message_updates: stats.message_updates,
            atomic_retries: stats.atomic_retries,
        }
    }
}

/// Instantiates one of Credo's implementations on a fresh device of
/// the given architecture.
pub fn engine_for(which: Implementation, profile: ArchProfile) -> Box<dyn BpEngine> {
    match which {
        Implementation::CEdge => Box::new(SeqEdgeEngine),
        Implementation::CNode => Box::new(SeqNodeEngine),
        Implementation::CudaEdge => Box::new(CudaEdgeEngine::new(Device::new(profile))),
        Implementation::CudaNode => Box::new(CudaNodeEngine::new(Device::new(profile))),
        Implementation::ParEdge => Box::new(ParEdgeEngine),
        Implementation::ParNode => Box::new(ParNodeEngine),
        Implementation::StreamNode => Box::new(credo_core::ShardedEngine::default()),
        Implementation::RelaxedNode => Box::new(RelaxedNodeEngine),
    }
}

/// Runs an engine from a clean prior state and returns its stats.
pub fn run_clean(
    engine: &dyn BpEngine,
    graph: &mut BeliefGraph,
    opts: &BpOptions,
) -> Result<BpStats, EngineError> {
    credo_core::run_fresh(engine, graph, opts)
}

/// [`run_clean`] with a telemetry dispatch attached, so experiments can
/// capture a trace of a measured run (see `report::save_trace`).
pub fn run_traced_clean(
    engine: &dyn BpEngine,
    graph: &mut BeliefGraph,
    opts: &BpOptions,
    trace: &credo::Dispatch,
) -> Result<BpStats, EngineError> {
    credo_core::run_fresh_traced(engine, graph, opts, trace)
}

/// Runs all four Credo implementations on a graph, returning
/// `(implementation, stats)` for those that completed (VRAM-exceeding CUDA
/// runs are skipped, mirroring §4.2).
pub fn run_all_implementations(
    graph: &mut BeliefGraph,
    opts: &BpOptions,
    profile: ArchProfile,
) -> Vec<(Implementation, BpStats)> {
    let mut out = Vec::with_capacity(4);
    for which in credo::ALL_IMPLEMENTATIONS {
        let engine = engine_for(which, profile);
        match run_clean(engine.as_ref(), graph, opts) {
            Ok(stats) => out.push((which, stats)),
            Err(EngineError::OutOfDeviceMemory { .. }) => {}
            Err(e) => panic!("engine {which} failed: {e}"),
        }
    }
    out
}

/// The fastest implementation in a result set (by reported time).
pub fn best_of(results: &[(Implementation, BpStats)]) -> Implementation {
    results
        .iter()
        .min_by(|a, b| {
            a.1.reported_time
                .partial_cmp(&b.1.reported_time)
                .expect("finite durations")
        })
        .map(|(i, _)| *i)
        .expect("at least one implementation completed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_gpusim::PASCAL_GTX1070;
    use credo_graph::generators::{synthetic, GenOptions};

    #[test]
    fn all_four_run_and_agree() {
        let mut g = synthetic(200, 800, &GenOptions::new(2).with_seed(99));
        let results = run_all_implementations(&mut g, &BpOptions::default(), PASCAL_GTX1070);
        assert_eq!(results.len(), 4);
        let best = best_of(&results);
        assert!(credo::ALL_IMPLEMENTATIONS.contains(&best));
    }

    #[test]
    fn record_captures_stats() {
        let mut g = synthetic(50, 200, &GenOptions::new(2));
        let stats = run_clean(&SeqEdgeEngine, &mut g, &BpOptions::default()).unwrap();
        let rec = RunRecord::new("10x40", 2, &stats);
        assert_eq!(rec.engine, "C Edge");
        assert!(rec.seconds >= 0.0);
        assert!(rec.iterations > 0);
    }
}
