//! Execution-plan agreement properties.
//!
//! Every ExecGraph-lowered engine must land within 1e-4 L∞ of the direct
//! (un-lowered) sequential per-node engine — across generator families,
//! thread counts, mixed cardinalities up to `MAX_BELIEFS`, and observed
//! nodes. For the node paradigm the contract is stronger (bit-identity),
//! which the unit suites pin; these properties guard the whole surface.

use credo::engines::{ParEdgeEngine, ParNodeEngine, SeqNodeEngine};
use credo::{BpEngine, BpOptions};
use credo_graph::generators::{
    grid, kronecker, preferential_attachment, synthetic, GenOptions, PotentialKind,
};
use credo_graph::{Belief, BeliefGraph, GraphBuilder, JointMatrix, MAX_BELIEFS};
use proptest::prelude::*;

/// Splitmix-style generator so graph construction is deterministic per seed
/// without pulling a full RNG into the strategy.
fn next(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

fn random_matrix(rows: usize, cols: usize, s: &mut u64) -> JointMatrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| 0.05 + (next(s) % 1000) as f32 / 1052.0)
        .collect();
    JointMatrix::from_rows(rows, cols, data)
}

fn random_prior(card: usize, s: &mut u64) -> Belief {
    let mut vals: Vec<f32> = (0..card)
        .map(|_| 0.1 + (next(s) % 1000) as f32 / 1111.0)
        .collect();
    let sum: f32 = vals.iter().sum();
    for v in &mut vals {
        *v /= sum;
    }
    Belief::from_slice(&vals)
}

/// A connected graph whose node cardinalities are drawn independently from
/// `2..=MAX_BELIEFS`, with per-edge random potentials sized to match each
/// endpoint pair — the layout the packed plan must get prefix-offsets
/// right for.
fn mixed_cardinality_graph(n: usize, extra_edges: usize, seed: u64) -> BeliefGraph {
    let mut s = seed | 1;
    let mut b = GraphBuilder::new();
    let cards: Vec<usize> = (0..n)
        .map(|_| 2 + (next(&mut s) as usize) % (MAX_BELIEFS - 1))
        .collect();
    let ids: Vec<_> = cards
        .iter()
        .map(|&c| b.add_node(random_prior(c, &mut s)))
        .collect();
    // Spanning structure keeps messages flowing everywhere.
    for i in 1..n {
        let j = (next(&mut s) as usize) % i;
        let m = random_matrix(cards[i], cards[j], &mut s);
        b.add_undirected_edge_with(ids[i], ids[j], m);
    }
    for _ in 0..extra_edges {
        let i = (next(&mut s) as usize) % n;
        let j = (next(&mut s) as usize) % n;
        if i == j {
            continue;
        }
        let m = random_matrix(cards[i], cards[j], &mut s);
        b.add_undirected_edge_with(ids[i], ids[j], m);
    }
    b.build().expect("mixed graph builds")
}

/// Observes a deterministic handful of nodes at valid states.
fn observe_some(g: &mut BeliefGraph, count: usize, seed: u64) {
    let mut s = seed | 1;
    let n = g.num_nodes();
    for _ in 0..count.min(n / 2) {
        let v = (next(&mut s) as usize) % n;
        let card = g.cardinality(v as u32);
        g.observe(v as u32, next(&mut s) as usize % card);
    }
}

/// A fixed iteration budget pins every engine to the same trajectory
/// length, so the comparison measures accumulation drift alone.
fn pinned(iterations: u32) -> BpOptions {
    BpOptions {
        threshold: 0.0,
        max_iterations: iterations,
        ..BpOptions::default()
    }
}

fn assert_close(reference: &BeliefGraph, work: &BeliefGraph, tol: f32, label: &str) {
    for (v, (a, b)) in reference.beliefs().iter().zip(work.beliefs()).enumerate() {
        assert!(
            a.linf_diff(b) < tol,
            "{label}: node {v} diverged: {a:?} vs {b:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed cardinalities: plan-lowered node engines vs the direct
    /// sequential reference. (The edge paradigm requires uniform
    /// cardinality and is covered by the uniform property below.)
    #[test]
    fn plan_node_engines_match_direct_on_mixed_cardinalities(
        n in 3usize..40,
        extra in 0usize..60,
        seed in any::<u64>(),
        observe in 0usize..4,
        threads in 1usize..5,
    ) {
        let mut base = mixed_cardinality_graph(n, extra, seed);
        observe_some(&mut base, observe, seed ^ 0xabcd);
        let mut reference = base.clone();
        SeqNodeEngine
            .run(&mut reference, &pinned(20).without_exec_plan())
            .unwrap();

        let mut seq = base.clone();
        SeqNodeEngine.run(&mut seq, &pinned(20)).unwrap();
        for (v, (a, b)) in reference.beliefs().iter().zip(seq.beliefs()).enumerate() {
            prop_assert!(
                a.linf_diff(b) < 1e-4,
                "plan Seq Node diverged at node {v}: {a:?} vs {b:?}"
            );
        }

        let mut par = base.clone();
        ParNodeEngine
            .run(&mut par, &pinned(20).with_threads(threads))
            .unwrap();
        for (v, (a, b)) in seq.beliefs().iter().zip(par.beliefs()).enumerate() {
            prop_assert!(
                a.linf_diff(b) == 0.0,
                "plan Par Node is not bit-identical to plan Seq Node at node {v}"
            );
        }
    }

    /// Uniform cardinalities across every generator family and potential
    /// kind: all three plan-lowered engines vs the direct sequential
    /// reference, with observed nodes mixed in.
    #[test]
    fn plan_engines_match_direct_across_generators(
        family in 0usize..4,
        k in 2usize..6,
        seed in any::<u64>(),
        kind in 0usize..3,
        observe in 0usize..4,
        threads in 1usize..5,
    ) {
        let potentials = match kind {
            0 => PotentialKind::SharedSmoothing(0.2),
            1 => PotentialKind::SharedRandom,
            _ => PotentialKind::PerEdgeRandom,
        };
        let gen = GenOptions::new(k).with_seed(seed).with_potentials(potentials);
        let mut base = match family {
            0 => synthetic(80, 320, &gen),
            1 => grid(9, 9, &gen),
            2 => kronecker(6, 6, &gen),
            _ => preferential_attachment(80, 3, &gen),
        };
        observe_some(&mut base, observe, seed ^ 0x1234);
        let mut reference = base.clone();
        SeqNodeEngine
            .run(&mut reference, &pinned(20).without_exec_plan())
            .unwrap();

        for (name, engine, opts) in [
            ("Seq Node", &SeqNodeEngine as &dyn BpEngine, pinned(20)),
            ("Par Node", &ParNodeEngine, pinned(20).with_threads(threads)),
            ("Par Edge", &ParEdgeEngine, pinned(20).with_threads(threads)),
        ] {
            let mut work = base.clone();
            engine.run(&mut work, &opts).unwrap();
            for (v, (a, b)) in reference.beliefs().iter().zip(work.beliefs()).enumerate() {
                prop_assert!(
                    a.linf_diff(b) < 1e-4,
                    "plan {name} diverged from direct C Node at node {v}: {a:?} vs {b:?}"
                );
            }
        }
    }

    /// Queue modes under the plan converge to the same fixed point as the
    /// direct full-sweep reference.
    #[test]
    fn plan_queue_modes_converge_to_direct_fixed_point(
        seed in any::<u64>(),
        threads in 1usize..4,
    ) {
        let base = synthetic(120, 480, &GenOptions::new(2).with_seed(seed));
        let mut reference = base.clone();
        SeqNodeEngine
            .run(&mut reference, &BpOptions::default().without_exec_plan())
            .unwrap();
        let queued = BpOptions::with_work_queue().with_threads(threads);
        let residual = BpOptions::default()
            .with_residual_priority()
            .with_threads(threads);
        for opts in [queued, residual] {
            for engine in [&ParNodeEngine as &dyn BpEngine, &ParEdgeEngine] {
                let mut work = base.clone();
                engine.run(&mut work, &opts).unwrap();
                for (a, b) in reference.beliefs().iter().zip(work.beliefs()) {
                    prop_assert!(
                        a.linf_diff(b) < 5e-3,
                        "plan {} queue mode diverged from direct reference",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn observed_nodes_stay_fixed_under_the_plan() {
    let mut base = synthetic(150, 600, &GenOptions::new(2).with_seed(6));
    base.observe(7, 1);
    base.observe(23, 0);
    for engine in [
        &SeqNodeEngine as &dyn BpEngine,
        &ParNodeEngine,
        &ParEdgeEngine,
    ] {
        let mut g = base.clone();
        engine.run(&mut g, &BpOptions::default()).unwrap();
        assert_eq!(g.beliefs()[7].as_slice(), &[0.0, 1.0], "{}", engine.name());
        assert_eq!(g.beliefs()[23].as_slice(), &[1.0, 0.0], "{}", engine.name());
    }
}

#[test]
fn max_cardinality_graphs_roundtrip_through_the_plan() {
    // Full-width beliefs exercise the f32x8 kernel path end to end.
    let g = grid(6, 6, &GenOptions::new(MAX_BELIEFS).with_seed(11));
    let mut direct = g.clone();
    let mut planned = g.clone();
    SeqNodeEngine
        .run(&mut direct, &pinned(15).without_exec_plan())
        .unwrap();
    SeqNodeEngine.run(&mut planned, &pinned(15)).unwrap();
    assert_close(&direct, &planned, 1e-4, "grid k=32");
}
