//! # credo-gpusim
//!
//! A functional + timing-model simulator for CUDA-like GPU execution — the
//! hardware substitution that lets this reproduction run the paper's
//! "CUDA" implementations without a physical GPU (see DESIGN.md).
//!
//! ## What it does
//!
//! * **Functional execution**: [`Device::launch`] runs a kernel closure for
//!   every thread of a grid, blocks in parallel on the host (rayon),
//!   threads within a block sequentially. Results are real — the CUDA
//!   engines' beliefs are checked against the sequential CPU engines.
//! * **Timing model**: each thread reports its work through a
//!   [`ThreadCtx`] (flops, global/shared/constant traffic, atomics, local
//!   state). Warp divergence is captured by taking the per-warp maximum of
//!   thread cycles; coalescing by a transaction-waste factor; occupancy by
//!   register-file pressure from per-thread state; atomic contention by a
//!   caller-supplied distinct-target count. An [`ArchProfile`] (Pascal
//!   GTX 1070 or Volta V100, §4) converts the totals into simulated
//!   device time, accumulated on the device's clock.
//! * **Memory management**: [`DeviceBuffer`]s charge allocation and PCIe
//!   transfer time and are bounded by the profile's VRAM capacity —
//!   §4.2's "TW and OR exceed the GPU's VRAM" falls out of this.

#![warn(missing_docs)]

mod arch;
mod buffer;
mod device;
mod kernel;
mod util;

pub use arch::{ArchProfile, PASCAL_GTX1070, VOLTA_V100};
pub use buffer::{DeviceBuffer, TrackedAlloc};
pub use device::{Device, DeviceError, GPU_TRACK, PCIE_TRACK};
pub use kernel::{KernelStats, LaunchConfig, ThreadCtx};
pub use util::{atomic_mul_f32, SharedSlice};
