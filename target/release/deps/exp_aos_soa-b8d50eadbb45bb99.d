/root/repo/target/release/deps/exp_aos_soa-b8d50eadbb45bb99.d: crates/bench/src/bin/exp_aos_soa.rs

/root/repo/target/release/deps/exp_aos_soa-b8d50eadbb45bb99: crates/bench/src/bin/exp_aos_soa.rs

crates/bench/src/bin/exp_aos_soa.rs:
