/root/repo/target/release/deps/proptest-0140b7d29aae1782.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0140b7d29aae1782.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
