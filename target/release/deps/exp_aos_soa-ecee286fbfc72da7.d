/root/repo/target/release/deps/exp_aos_soa-ecee286fbfc72da7.d: crates/bench/src/bin/exp_aos_soa.rs Cargo.toml

/root/repo/target/release/deps/libexp_aos_soa-ecee286fbfc72da7.rmeta: crates/bench/src/bin/exp_aos_soa.rs Cargo.toml

crates/bench/src/bin/exp_aos_soa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
