//! Errors shared by the parsers.

use credo_graph::GraphError;

/// Anything that can go wrong while reading or writing a belief network.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Syntax error with a location.
    Parse {
        /// Format being parsed ("BIF", "XML-BIF", "Credo-MTX").
        format: &'static str,
        /// 1-based line number (0 when unknown).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed structure failed graph validation.
    Graph(GraphError),
    /// Binary decode failure with an exact byte offset (spill files, store
    /// blobs).
    Blob {
        /// Format being decoded ("Credo-spill", "Credo-blob").
        format: &'static str,
        /// Byte offset at which decoding failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl IoError {
    pub(crate) fn parse(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            format,
            line,
            message: message.into(),
        }
    }

    /// A located binary decode error (see [`crate::ByteReader`]).
    pub fn blob(format: &'static str, offset: usize, message: impl Into<String>) -> Self {
        IoError::Blob {
            format,
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse {
                format,
                line,
                message,
            } => write!(f, "{format} parse error at line {line}: {message}"),
            IoError::Graph(e) => write!(f, "invalid network: {e}"),
            IoError::Blob {
                format,
                offset,
                message,
            } => write!(f, "{format} decode error at byte {offset}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            IoError::Parse { .. } | IoError::Blob { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = IoError::parse("BIF", 12, "expected '{'");
        assert_eq!(e.to_string(), "BIF parse error at line 12: expected '{'");
    }

    #[test]
    fn io_errors_convert() {
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
    }
}
