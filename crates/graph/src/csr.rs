//! Compressed adjacency lists.
//!
//! §3.4: "Credo indexes the edges' nodes and utilize compressed adjacency
//! lists to represent the edges. Thus, Credo keeps itself largely to these
//! indices and only touches the actual edge and node values when performing
//! the actual mathematics."
//!
//! A [`Csr`] maps each node to the contiguous range of directed-arc ids
//! incident to it (either incoming or outgoing, depending on how it was
//! built). Arc ids index into the graph's arc table and potential store.

/// A compressed sparse row index over directed arcs.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    arcs: Vec<u32>,
}

impl Csr {
    /// Builds a CSR mapping `node -> arc ids` from `(node, arc)` incidence
    /// pairs. `key(arc_index)` returns the node each arc is filed under
    /// (its destination for an incoming index, its source for an outgoing
    /// one). Arcs are grouped in ascending node order; within a node they
    /// retain their relative arc-id order (counting sort is stable).
    pub fn from_incidence<F>(num_nodes: usize, num_arcs: usize, key: F) -> Self
    where
        F: Fn(usize) -> u32,
    {
        let mut counts = vec![0usize; num_nodes + 1];
        for a in 0..num_arcs {
            let n = key(a) as usize;
            debug_assert!(n < num_nodes, "arc {a} references node {n} >= {num_nodes}");
            counts[n + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut arcs = vec![0u32; num_arcs];
        for a in 0..num_arcs {
            let n = key(a) as usize;
            arcs[cursor[n]] = a as u32;
            cursor[n] += 1;
        }
        Csr { offsets, arcs }
    }

    /// Number of nodes indexed.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs indexed.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The arc ids incident to `node`.
    #[inline]
    pub fn arcs(&self, node: usize) -> &[u32] {
        &self.arcs[self.offsets[node]..self.offsets[node + 1]]
    }

    /// Degree of `node` in this index.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// The raw offset array (length `num_nodes + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw arc-id array, grouped by node.
    #[inline]
    pub fn arc_ids(&self) -> &[u32] {
        &self.arcs
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|n| self.degree(n))
            .max()
            .unwrap_or(0)
    }

    /// Bytes used by the index.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.arcs.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arcs: 0:(0->1) 1:(0->2) 2:(1->2) 3:(2->0)
    const ARCS: [(u32, u32); 4] = [(0, 1), (0, 2), (1, 2), (2, 0)];

    #[test]
    fn out_csr_groups_by_source() {
        let csr = Csr::from_incidence(3, ARCS.len(), |a| ARCS[a].0);
        assert_eq!(csr.arcs(0), &[0, 1]);
        assert_eq!(csr.arcs(1), &[2]);
        assert_eq!(csr.arcs(2), &[3]);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_arcs(), 4);
    }

    #[test]
    fn in_csr_groups_by_destination() {
        let csr = Csr::from_incidence(3, ARCS.len(), |a| ARCS[a].1);
        assert_eq!(csr.arcs(0), &[3]);
        assert_eq!(csr.arcs(1), &[0]);
        assert_eq!(csr.arcs(2), &[1, 2]);
    }

    #[test]
    fn degrees_and_max_degree() {
        let csr = Csr::from_incidence(3, ARCS.len(), |a| ARCS[a].1);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(2), 2);
        assert_eq!(csr.max_degree(), 2);
    }

    #[test]
    fn isolated_nodes_have_empty_ranges() {
        let csr = Csr::from_incidence(5, ARCS.len(), |a| ARCS[a].0);
        assert_eq!(csr.arcs(3), &[] as &[u32]);
        assert_eq!(csr.arcs(4), &[] as &[u32]);
        assert_eq!(csr.degree(4), 0);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_incidence(0, 0, |_| unreachable!());
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_arcs(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn arc_order_within_node_is_stable() {
        // Two parallel arcs 0->1 must appear in id order.
        let arcs = [(0u32, 1u32), (0, 1), (0, 1)];
        let csr = Csr::from_incidence(2, arcs.len(), |a| arcs[a].0);
        assert_eq!(csr.arcs(0), &[0, 1, 2]);
    }
}
