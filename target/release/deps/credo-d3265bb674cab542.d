/root/repo/target/release/deps/credo-d3265bb674cab542.d: crates/credo/src/lib.rs crates/credo/src/selector.rs Cargo.toml

/root/repo/target/release/deps/libcredo-d3265bb674cab542.rmeta: crates/credo/src/lib.rs crates/credo/src/selector.rs Cargo.toml

crates/credo/src/lib.rs:
crates/credo/src/selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
