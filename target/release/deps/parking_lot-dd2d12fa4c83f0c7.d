/root/repo/target/release/deps/parking_lot-dd2d12fa4c83f0c7.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-dd2d12fa4c83f0c7.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
