/root/repo/target/debug/examples/image_denoising-ae10fe96ef1fbc4c.d: crates/credo/../../examples/image_denoising.rs

/root/repo/target/debug/examples/image_denoising-ae10fe96ef1fbc4c: crates/credo/../../examples/image_denoising.rs

crates/credo/../../examples/image_denoising.rs:
