//! The *unindexed* traditional BP baseline — "prior works'" implementation
//! style that §2.1.1 benchmarks against loopy BP.
//!
//! The measured 1032×–11427× gap between non-loopy and loopy by-edge BP
//! only makes sense for an implementation that, like the BIF-era codebases
//! the paper describes, discovers graph structure by scanning the raw edge
//! list rather than through compressed adjacency indices (§3.4 is precisely
//! the optimization that removes these scans). This engine reproduces that
//! behaviour: every adjacency question is answered by a linear pass over
//! the arc table, making level determination and both sweeps O(V·E).
//!
//! It computes the *same* beliefs as [`super::TreeEngine`]; only the data
//! access strategy differs (enforced by tests).

use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::opts::BpOptions;
use crate::seq::tree::{two_pass, TreeSlot};
use crate::stats::BpStats;
use credo_graph::BeliefGraph;
use std::time::Instant;
use tracing::Dispatch;

/// Traditional two-pass BP without adjacency indices (the §2.1.1 baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveTreeEngine;

/// Spanning forest computed with edge-list scans only: expanding a BFS
/// frontier re-scans the entire arc table once per frontier node.
fn naive_spanning_forest(graph: &BeliefGraph) -> (Vec<TreeSlot>, Vec<Vec<u32>>) {
    let n = graph.num_nodes();
    let arcs = graph.arcs();
    let mut slots = vec![
        TreeSlot {
            parent_arc: None,
            parent: u32::MAX,
            level: 0
        };
        n
    ];
    let mut visited = vec![false; n];
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        frontier.clear();
        frontier.push(start);
        let mut level = 0u32;
        while !frontier.is_empty() {
            if levels.len() <= level as usize {
                levels.push(Vec::new());
            }
            levels[level as usize].extend_from_slice(&frontier);
            next.clear();
            for &u in &frontier {
                // The naive adjacency query: one full scan of the arc table
                // per frontier node. This must visit arcs in the same order
                // as the indexed engine (out-arcs of u first, then in-arcs)
                // to build the identical spanning tree; the CSR keeps arc
                // ids in ascending order per node, as does this scan.
                for (a, arc) in arcs.iter().enumerate() {
                    if arc.src == u && !visited[arc.dst as usize] {
                        visited[arc.dst as usize] = true;
                        slots[arc.dst as usize] = TreeSlot {
                            parent_arc: Some((a as u32, true)),
                            parent: u,
                            level: level + 1,
                        };
                        next.push(arc.dst);
                    }
                }
                for (a, arc) in arcs.iter().enumerate() {
                    if arc.dst == u && !visited[arc.src as usize] {
                        visited[arc.src as usize] = true;
                        slots[arc.src as usize] = TreeSlot {
                            parent_arc: Some((a as u32, false)),
                            parent: u,
                            level: level + 1,
                        };
                        next.push(arc.src);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
    }
    (slots, levels)
}

/// Children discovered by scanning the whole slot table once per node.
fn naive_children_lists(slots: &[TreeSlot]) -> Vec<Vec<u32>> {
    let n = slots.len();
    let mut children = vec![Vec::new(); n];
    for (p, kids) in children.iter_mut().enumerate() {
        for (v, slot) in slots.iter().enumerate() {
            if slot.parent_arc.is_some() && slot.parent as usize == p {
                kids.push(v as u32);
            }
        }
    }
    children
}

impl BpEngine for NaiveTreeEngine {
    fn name(&self) -> &'static str {
        "Non-loopy (naive)"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Tree
    }

    fn platform(&self) -> Platform {
        Platform::CpuSequential
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let _ = opts;
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let (slots, levels) = naive_spanning_forest(graph);
        let children = naive_children_lists(&slots);
        let mut per_iteration = Vec::new();
        let (node_updates, message_updates) =
            two_pass(graph, &slots, &levels, &children, trace, &mut per_iteration);
        let elapsed = start.elapsed();
        drop(run_span);
        Ok(BpStats {
            engine: self.name(),
            iterations: 2,
            converged: true,
            final_delta: 0.0,
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::tree::tests::brute_force_marginals;
    use crate::seq::TreeEngine;
    use credo_graph::generators::{random_tree, synthetic, GenOptions, PotentialKind};

    #[test]
    fn matches_indexed_engine_on_trees() {
        for seed in [1u64, 7, 13] {
            let opts = GenOptions::new(2)
                .with_seed(seed)
                .with_potentials(PotentialKind::PerEdgeRandom);
            let mut g1 = random_tree(40, &opts);
            let mut g2 = g1.clone();
            TreeEngine.run(&mut g1, &BpOptions::default()).unwrap();
            NaiveTreeEngine.run(&mut g2, &BpOptions::default()).unwrap();
            for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
                assert!(a.linf_diff(b) < 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn matches_indexed_engine_on_cyclic_graphs() {
        let mut g1 = synthetic(40, 120, &GenOptions::new(2).with_seed(3));
        let mut g2 = g1.clone();
        TreeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        NaiveTreeEngine.run(&mut g2, &BpOptions::default()).unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-6, "same spanning tree, same beliefs");
        }
    }

    #[test]
    fn exact_on_small_trees() {
        let opts = GenOptions::new(3)
            .with_seed(5)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let mut g = random_tree(8, &opts);
        let expected = brute_force_marginals(&g);
        NaiveTreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        for (got, want) in g.beliefs().iter().zip(&expected) {
            assert!(got.linf_diff(want) < 1e-4);
        }
    }

    #[test]
    fn is_substantially_slower_than_indexed_on_nontrivial_graphs() {
        // The whole point of the baseline: O(V·E) structure discovery.
        let mut g1 = synthetic(1500, 6000, &GenOptions::new(2).with_seed(4));
        let mut g2 = g1.clone();
        let fast = TreeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        let slow = NaiveTreeEngine.run(&mut g2, &BpOptions::default()).unwrap();
        assert!(
            slow.reported_time > fast.reported_time,
            "naive {:?} vs indexed {:?}",
            slow.reported_time,
            fast.reported_time
        );
    }
}
