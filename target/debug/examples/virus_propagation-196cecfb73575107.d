/root/repo/target/debug/examples/virus_propagation-196cecfb73575107.d: crates/credo/../../examples/virus_propagation.rs

/root/repo/target/debug/examples/virus_propagation-196cecfb73575107: crates/credo/../../examples/virus_propagation.rs

crates/credo/../../examples/virus_propagation.rs:
