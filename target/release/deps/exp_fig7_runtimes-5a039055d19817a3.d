/root/repo/target/release/deps/exp_fig7_runtimes-5a039055d19817a3.d: crates/bench/src/bin/exp_fig7_runtimes.rs

/root/repo/target/release/deps/exp_fig7_runtimes-5a039055d19817a3: crates/bench/src/bin/exp_fig7_runtimes.rs

crates/bench/src/bin/exp_fig7_runtimes.rs:
