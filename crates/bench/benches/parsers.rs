//! Criterion benchmarks for the three input formats (§3.2.1's comparison
//! as a repeatable microbenchmark).

use credo_graph::generators::{family_out, random_tree, GenOptions, PotentialKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_family_out(c: &mut Criterion) {
    let g = family_out();
    let mut bif = Vec::new();
    credo_io::bif::write(&g, &mut bif).unwrap();
    let mut xml = Vec::new();
    credo_io::xmlbif::write(&g, &mut xml).unwrap();
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    credo_io::mtx::write(&g, &mut nodes, &mut edges).unwrap();

    let mut group = c.benchmark_group("parse_family_out");
    group.bench_function("bif", |b| {
        b.iter(|| black_box(credo_io::bif::read(black_box(&bif[..])).unwrap()))
    });
    group.bench_function("xmlbif", |b| {
        b.iter(|| black_box(credo_io::xmlbif::read(black_box(&xml[..])).unwrap()))
    });
    group.bench_function("mtx", |b| {
        b.iter(|| {
            black_box(credo_io::mtx::read(black_box(&nodes[..]), black_box(&edges[..])).unwrap())
        })
    });
    group.finish();
}

fn bench_1k_network(c: &mut Criterion) {
    let g = random_tree(
        1000,
        &GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom),
    );
    let mut bif = Vec::new();
    credo_io::bif::write(&g, &mut bif).unwrap();
    let mut xml = Vec::new();
    credo_io::xmlbif::write(&g, &mut xml).unwrap();
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    credo_io::mtx::write(&g, &mut nodes, &mut edges).unwrap();

    let mut group = c.benchmark_group("parse_1k_network");
    group.sample_size(20);
    group.bench_function("bif", |b| {
        b.iter(|| black_box(credo_io::bif::read(black_box(&bif[..])).unwrap()))
    });
    group.bench_function("xmlbif", |b| {
        b.iter(|| black_box(credo_io::xmlbif::read(black_box(&xml[..])).unwrap()))
    });
    group.bench_function("mtx", |b| {
        b.iter(|| {
            black_box(credo_io::mtx::read(black_box(&nodes[..]), black_box(&edges[..])).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_family_out, bench_1k_network);
criterion_main!(benches);
