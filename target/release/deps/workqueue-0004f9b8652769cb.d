/root/repo/target/release/deps/workqueue-0004f9b8652769cb.d: crates/bench/benches/workqueue.rs Cargo.toml

/root/repo/target/release/deps/libworkqueue-0004f9b8652769cb.rmeta: crates/bench/benches/workqueue.rs Cargo.toml

crates/bench/benches/workqueue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
