/root/repo/target/release/deps/classifiers-c060bb84bba48d09.d: crates/bench/benches/classifiers.rs Cargo.toml

/root/repo/target/release/deps/libclassifiers-c060bb84bba48d09.rmeta: crates/bench/benches/classifiers.rs Cargo.toml

crates/bench/benches/classifiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
