/root/repo/target/release/deps/exp_par_speedup-289833b4d16416d5.d: crates/bench/src/bin/exp_par_speedup.rs

/root/repo/target/release/deps/exp_par_speedup-289833b4d16416d5: crates/bench/src/bin/exp_par_speedup.rs

crates/bench/src/bin/exp_par_speedup.rs:
