//! OpenMP-analogue per-edge engine ("OpenMP Edge").
//!
//! §3.3: "With the edge approach, a child node may have many parents and
//! thus must combine each edge's contribution to its new state atomically
//! to avoid race conditions." The accumulators are flat `AtomicU32` cells
//! (one per node-state) updated with CAS multiplies.

use super::{atomic_mul_f32, chunks_for, thread_count, SharedSlice};
use crate::convergence::ConvergenceTracker;
use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::opts::BpOptions;
use crate::queue::WorkQueue;
use crate::stats::{BpStats, IterationStats};
use credo_graph::{Belief, BeliefGraph};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Instant;
use tracing::Dispatch;

/// CAS-retry histogram buckets: retries-per-`atomic_mul_f32` call of
/// 0, 1, 2, 3, 4–7 and 8+ (the §2.4 contention signature).
const RETRY_BUCKETS: usize = 6;

fn retry_bucket(retries: u32) -> usize {
    match retries {
        0..=3 => retries as usize,
        4..=7 => 4,
        _ => 5,
    }
}

/// CPU-parallel per-edge loopy BP with atomic message combination.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenMpEdgeEngine;

impl BpEngine for OpenMpEdgeEngine {
    fn name(&self) -> &'static str {
        "OpenMP Edge"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Edge
    }

    fn platform(&self) -> Platform {
        Platform::CpuParallel
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let opts = &opts.normalized();
        let card = graph
            .uniform_cardinality()
            .ok_or(EngineError::NonUniformCardinality)?;
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let n = graph.num_nodes();
        let threads = thread_count(opts.threads);
        let mut tracker = ConvergenceTracker::new(opts);
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();
        let cas_retries = AtomicU64::new(0);
        let retry_hist: [AtomicU64; RETRY_BUCKETS] = Default::default();

        // Flat atomic accumulator: acc[v * card + s].
        let acc: Vec<AtomicU32> = (0..n * card).map(|_| AtomicU32::new(0)).collect();

        let full_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        let full_arcs: Vec<u32> = (0..graph.num_arcs() as u32)
            .filter(|&a| !graph.observed()[graph.arc(a).dst as usize])
            .collect();

        let mut queue = opts
            .work_queue
            .then(|| WorkQueue::new(n, |v| !graph.observed()[v]));
        let mut arc_queue: Vec<u32> = Vec::new();
        let changed_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let mut repop_scratch: Vec<u32> = Vec::new();

        loop {
            let iter_start = Instant::now();
            let (active_nodes, active_arcs): (&[u32], &[u32]) = match &queue {
                Some(q) => {
                    arc_queue.clear();
                    for &v in q.active() {
                        arc_queue.extend_from_slice(graph.in_arcs(v));
                    }
                    (q.active(), &arc_queue)
                }
                None => (&full_nodes, &full_arcs),
            };
            if active_nodes.is_empty() {
                tracker.mark_converged();
                break;
            }
            let queue_depth = active_nodes.len() as u64;
            let arcs_scheduled = active_arcs.len() as u64;
            let iter_span = trace.span(
                "iteration",
                &[
                    ("iter", (per_iteration.len() as u64).into()),
                    ("queue_depth", queue_depth.into()),
                    ("active_arcs", arcs_scheduled.into()),
                    ("threads", threads.into()),
                ],
            );
            let retries_before = cas_retries.load(Ordering::Relaxed);

            // Parallel region 1: reset accumulators to priors.
            {
                let g = &*graph;
                let acc_ref = &acc;
                std::thread::scope(|s| {
                    for chunk in chunks_for(active_nodes, threads) {
                        s.spawn(move || {
                            for &v in chunk {
                                let prior = &g.priors()[v as usize];
                                let base = v as usize * card;
                                for st in 0..card {
                                    acc_ref[base + st]
                                        .store(prior.get(st).to_bits(), Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });
            }

            // Parallel region 2: stream arcs, combining atomically.
            {
                let g = &*graph;
                let acc_ref = &acc;
                let retries_ref = &cas_retries;
                let hist_ref = &retry_hist;
                std::thread::scope(|s| {
                    for chunk in chunks_for(active_arcs, threads) {
                        s.spawn(move || {
                            let prev = g.beliefs();
                            let mut local_retries = 0u64;
                            let mut local_hist = [0u64; RETRY_BUCKETS];
                            for &a in chunk {
                                let arc = g.arc(a);
                                let msg = g.potential(a).message(&prev[arc.src as usize]);
                                let base = arc.dst as usize * card;
                                for st in 0..card {
                                    let retries = atomic_mul_f32(&acc_ref[base + st], msg.get(st));
                                    local_retries += retries as u64;
                                    local_hist[retry_bucket(retries)] += 1;
                                }
                            }
                            retries_ref.fetch_add(local_retries, Ordering::Relaxed);
                            for (cell, count) in hist_ref.iter().zip(local_hist) {
                                cell.fetch_add(count, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
            message_updates += active_arcs.len() as u64;

            // Parallel region 3: marginalize, diff, publish.
            let sum: f32 = {
                let beliefs = graph.beliefs_mut();
                let shared = SharedSlice::new(beliefs);
                let acc_ref = &acc;
                let flags = &changed_flags;
                let qt = opts.queue_threshold;
                let partials: Vec<f32> = std::thread::scope(|s| {
                    let handles: Vec<_> = chunks_for(active_nodes, threads)
                        .map(|chunk| {
                            let shared = &shared;
                            s.spawn(move || {
                                let mut local = 0.0f32;
                                for &v in chunk {
                                    let base = v as usize * card;
                                    let mut new = Belief::zeros(card);
                                    for st in 0..card {
                                        new.set(
                                            st,
                                            f32::from_bits(
                                                acc_ref[base + st].load(Ordering::Relaxed),
                                            ),
                                        );
                                    }
                                    new.normalize();
                                    // SAFETY: reading the old value then
                                    // overwriting; node ids are unique per
                                    // chunk and nothing else touches beliefs
                                    // during this region.
                                    let old = unsafe { &*shared.ptr_at(v as usize) };
                                    let diff = new.l1_diff(old);
                                    local += diff;
                                    if diff >= qt {
                                        flags[v as usize].store(true, Ordering::Relaxed);
                                    }
                                    unsafe { shared.write(v as usize, new) };
                                }
                                local
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                partials.iter().sum()
            };
            node_updates += active_nodes.len() as u64;

            if let Some(q) = &mut queue {
                // Only this iteration's active nodes can carry a flag, so
                // scan those instead of the whole flag array.
                repop_scratch.clear();
                repop_scratch.extend_from_slice(q.active());
                let changed = q.push_next_from_flags_among(&repop_scratch, &changed_flags);
                if opts.wake_neighbors {
                    for &v in &changed {
                        for &a in graph.out_arcs(v) {
                            q.push_next(graph.arc(a).dst);
                        }
                    }
                }
                q.advance();
            } else {
                for f in &changed_flags {
                    f.store(false, Ordering::Relaxed);
                }
            }

            if trace.enabled() {
                iter_span.record(&[("delta", sum.into())]);
                trace.counter("queue_depth", queue_depth as f64);
                trace.counter(
                    "cas_retries",
                    (cas_retries.load(Ordering::Relaxed) - retries_before) as f64,
                );
            }
            drop(iter_span);
            per_iteration.push(IterationStats {
                delta: sum,
                node_updates: queue_depth,
                message_updates: arcs_scheduled,
                queue_depth,
                elapsed: iter_start.elapsed(),
            });

            if !tracker.record(sum) {
                break;
            }
        }

        let elapsed = start.elapsed();
        if trace.enabled() {
            // The contention signature: how many CAS retries each atomic
            // multiply burned, bucketed 0/1/2/3/4-7/8+.
            trace.event(
                "cas_retry_histogram",
                &[
                    ("retries_0", retry_hist[0].load(Ordering::Relaxed).into()),
                    ("retries_1", retry_hist[1].load(Ordering::Relaxed).into()),
                    ("retries_2", retry_hist[2].load(Ordering::Relaxed).into()),
                    ("retries_3", retry_hist[3].load(Ordering::Relaxed).into()),
                    ("retries_4_7", retry_hist[4].load(Ordering::Relaxed).into()),
                    (
                        "retries_8_plus",
                        retry_hist[5].load(Ordering::Relaxed).into(),
                    ),
                ],
            );
            run_span.record(&[
                ("iterations", tracker.iterations().into()),
                ("converged", tracker.converged().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            final_delta: if tracker.last_sum().is_finite() {
                tracker.last_sum()
            } else {
                0.0
            },
            node_updates,
            message_updates,
            atomic_retries: cas_retries.load(Ordering::Relaxed),
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqEdgeEngine;
    use credo_graph::generators::{kronecker, synthetic, GenOptions, PotentialKind};
    use credo_graph::{GraphBuilder, JointMatrix};

    #[test]
    fn matches_sequential_edge_engine() {
        for threads in [1usize, 2, 4] {
            let mut g1 = synthetic(200, 800, &GenOptions::new(3).with_seed(23));
            let mut g2 = g1.clone();
            SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
            OpenMpEdgeEngine
                .run(&mut g2, &BpOptions::default().with_threads(threads))
                .unwrap();
            for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
                assert!(a.linf_diff(b) < 1e-3, "threads={threads}");
            }
        }
    }

    #[test]
    fn matches_on_hub_graphs() {
        let mut g1 = kronecker(7, 8, &GenOptions::new(2).with_seed(9));
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        OpenMpEdgeEngine
            .run(&mut g2, &BpOptions::default().with_threads(4))
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn rejects_non_uniform_cardinality() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(3));
        b.add_directed_edge_with(n0, n1, JointMatrix::uniform(2, 3));
        let mut g = b.build().unwrap();
        let err = OpenMpEdgeEngine
            .run(&mut g, &BpOptions::default())
            .unwrap_err();
        assert_eq!(err, EngineError::NonUniformCardinality);
    }

    #[test]
    fn per_edge_potentials_supported() {
        let opts = GenOptions::new(2)
            .with_seed(31)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let mut g1 = synthetic(60, 180, &opts);
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        OpenMpEdgeEngine
            .run(&mut g2, &BpOptions::default().with_threads(2))
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }
}
