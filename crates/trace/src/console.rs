//! Progress-line recorder for CLI tools and benchmark binaries.

use std::sync::atomic::{AtomicU64, Ordering};

use tracing::{field, Field, Id, Subscriber};

/// Prints events as human-readable progress lines on stdout.
///
/// This is the structured replacement for ad-hoc `println!` progress
/// output: binaries emit `trace.event(...)` and pick the recorder from a
/// `--quiet` flag — a [`tracing::Dispatch::none`] silences everything
/// without touching the emission sites.
///
/// Events named `progress` with a `msg` field print as the bare message;
/// any other event prints as `name key=value ...`. Spans and counters are
/// accepted but not printed (they are for buffer recorders).
#[derive(Default)]
pub struct ConsoleRecorder {
    next_id: AtomicU64,
}

impl ConsoleRecorder {
    /// A recorder printing to stdout.
    pub fn new() -> Self {
        Self::default()
    }
}

fn fmt_value(value: &field::Value<'_>) -> String {
    match *value {
        field::Value::U64(v) => v.to_string(),
        field::Value::I64(v) => v.to_string(),
        field::Value::F64(v) => format!("{v:.6}"),
        field::Value::Bool(v) => v.to_string(),
        field::Value::Str(v) => v.to_string(),
    }
}

impl Subscriber for ConsoleRecorder {
    fn new_span(&self, _name: &'static str, _fields: &[Field<'_>]) -> Id {
        Id(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn record(&self, _id: Id, _fields: &[Field<'_>]) {}

    fn close_span(&self, _id: Id) {}

    fn event(&self, name: &'static str, fields: &[Field<'_>]) {
        if name == "progress" {
            if let Some((_, msg)) = fields.iter().find(|(k, _)| *k == "msg") {
                println!("{}", fmt_value(msg));
                return;
            }
        }
        let rendered: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{k}={}", fmt_value(v)))
            .collect();
        if rendered.is_empty() {
            println!("{name}");
        } else {
            println!("{name} {}", rendered.join(" "));
        }
    }

    fn timed_span(
        &self,
        _track: &'static str,
        _name: &'static str,
        _start_us: f64,
        _end_us: f64,
        _fields: &[Field<'_>],
    ) {
    }

    fn counter(&self, _name: &'static str, _value: f64) {}
}
