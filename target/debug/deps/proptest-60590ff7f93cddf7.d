/root/repo/target/debug/deps/proptest-60590ff7f93cddf7.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-60590ff7f93cddf7.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-60590ff7f93cddf7.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
