/root/repo/target/release/deps/exp_parsers-fa6a37c6d163686e.d: crates/bench/src/bin/exp_parsers.rs

/root/repo/target/release/deps/exp_parsers-fa6a37c6d163686e: crates/bench/src/bin/exp_parsers.rs

crates/bench/src/bin/exp_parsers.rs:
