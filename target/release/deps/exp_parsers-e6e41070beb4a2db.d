/root/repo/target/release/deps/exp_parsers-e6e41070beb4a2db.d: crates/bench/src/bin/exp_parsers.rs

/root/repo/target/release/deps/exp_parsers-e6e41070beb4a2db: crates/bench/src/bin/exp_parsers.rs

crates/bench/src/bin/exp_parsers.rs:
