/root/repo/target/release/deps/credo_gpusim-f99b2efdc0f2150d.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/buffer.rs crates/gpusim/src/device.rs crates/gpusim/src/kernel.rs crates/gpusim/src/util.rs Cargo.toml

/root/repo/target/release/deps/libcredo_gpusim-f99b2efdc0f2150d.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/buffer.rs crates/gpusim/src/device.rs crates/gpusim/src/kernel.rs crates/gpusim/src/util.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/kernel.rs:
crates/gpusim/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
