//! Sharded execution plans: contiguous node ranges lowered into
//! independent packed shards with an explicit boundary frontier.
//!
//! The resident [`crate::ExecGraph`] holds every arc of the graph at once;
//! past the paper's thousands-of-nodes BIF ceiling that is exactly the
//! memory wall the §3.2 streaming format was designed to avoid. A
//! [`ShardedExec`] splits the node id space into K contiguous ranges and
//! lowers each range into an [`ExecShard`] — the same `PackedArc` /
//! prefix-offset / deduplicated-pool layout as `ExecGraph`, restricted to
//! the arcs that *end* in the range. Each shard appends **halo slots**
//! after its local nodes: one packed belief slot per out-of-range source
//! feeding the shard, so a shard's sweep reads only shard-local arrays.
//!
//! Between sweeps the shards exchange boundary beliefs through a packed
//! **frontier** array (one slot per node that any other shard imports,
//! double-buffered by the engine): each shard copies its
//! [`ShardedMeta::imports`] from the previous sweep's frontier into its
//! halo slots before computing, and publishes its
//! [`ShardedMeta::exports`] into the next sweep's frontier afterwards.
//! Every read therefore observes sweep `t-1` state — the same Jacobi
//! schedule as the resident plan runner, making the per-node arithmetic
//! bit-identical to it.
//!
//! Shards can be built two ways that must (and do — see the tests and
//! `credo-stream`) produce byte-identical layouts:
//!
//! * [`ExecShard::compile_range`] from a resident [`BeliefGraph`];
//! * the `credo-stream` two-pass lowerer, straight from MTX files.
//!
//! Both intern potentials and assign halo slots while scanning arcs in
//! **ascending arc id order** (edge-file order, forward arc before its
//! reverse), which pins pool offsets and halo slot numbering to the same
//! first-encounter sequence regardless of how the shard was produced.

use crate::exec::{check_arcs, check_prefix_offsets, PackedArc};
use crate::graph::BeliefGraph;
use crate::slab::Slab;
use std::collections::HashMap;

/// One boundary-belief copy: `card` floats between a shard-local packed
/// offset and a frontier packed offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCopy {
    /// Packed offset inside the shard's belief array (halo region for
    /// imports, local region for exports).
    pub local_off: u32,
    /// Packed offset inside the frontier array.
    pub frontier_off: u32,
    /// Number of floats to copy (the node's cardinality).
    pub card: u16,
}

/// One contiguous node range lowered into packed execution form.
///
/// Layout mirrors [`crate::ExecGraph`]: `node_off` prefix-offsets the
/// packed belief array, whose first `local_nodes()` entries are the range
/// `[range.0, range.1)` in order and whose tail is one slot per halo
/// (out-of-range) source in first-encounter order; `in_arcs` is the
/// in-CSR of the local nodes with `src_off` pre-resolved into that local
/// array; `pot_pool` holds the distinct joint matrices reachable from
/// this shard, content-deduplicated in ascending-arc-id encounter order.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecShard {
    /// Global node id range `[lo, hi)` this shard owns.
    pub range: (u32, u32),
    /// `local + halo + 1` prefix offsets into the shard belief array.
    pub node_off: Slab<u32>,
    /// Packed priors of the local nodes (`node_off[local]` floats).
    pub priors: Slab<f32>,
    /// `local + 1` prefix offsets into `in_arcs`.
    pub in_off: Slab<u32>,
    /// Pre-resolved in-arcs of the local nodes, grouped by destination.
    pub in_arcs: Slab<PackedArc>,
    /// Distinct joint matrices, row-major, concatenated.
    pub pot_pool: Slab<f32>,
    /// Number of distinct matrices in `pot_pool`.
    pub pool_matrices: u32,
    /// Observed flags of the local nodes.
    pub observed: Vec<bool>,
    /// Global ids of the halo sources, in slot order.
    pub halo: Vec<u32>,
}

impl ExecShard {
    /// Number of nodes this shard owns.
    #[inline]
    pub fn local_nodes(&self) -> usize {
        (self.range.1 - self.range.0) as usize
    }

    /// Packed floats for local + halo slots.
    #[inline]
    pub fn packed_len(&self) -> usize {
        *self.node_off.last().unwrap() as usize
    }

    /// Packed floats for the local region only.
    #[inline]
    pub fn local_len(&self) -> usize {
        self.node_off[self.local_nodes()] as usize
    }

    /// Packed offset of local or halo slot `slot`.
    #[inline]
    pub fn slot_off(&self, slot: usize) -> usize {
        self.node_off[slot] as usize
    }

    /// Cardinality of local or halo slot `slot`.
    #[inline]
    pub fn slot_card(&self, slot: usize) -> usize {
        (self.node_off[slot + 1] - self.node_off[slot]) as usize
    }

    /// The pre-resolved in-arcs of local node `v` (0-based within the
    /// shard).
    #[inline]
    pub fn in_arcs_of(&self, v: usize) -> &[PackedArc] {
        &self.in_arcs[self.in_off[v] as usize..self.in_off[v + 1] as usize]
    }

    /// In-degree of local node `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> u32 {
        self.in_off[v + 1] - self.in_off[v]
    }

    /// A potential's row-major data for one of this shard's arcs.
    #[inline]
    pub fn potential(&self, arc: &PackedArc) -> &[f32] {
        let len = arc.src_card as usize * arc.dst_card as usize;
        &self.pot_pool[arc.pot_off as usize..arc.pot_off as usize + len]
    }

    /// Bytes held by this shard's arrays.
    pub fn memory_bytes(&self) -> usize {
        self.node_off.len() * 4
            + self.priors.len() * 4
            + self.in_off.len() * 4
            + self.in_arcs.len() * std::mem::size_of::<PackedArc>()
            + self.pot_pool.len() * 4
            + self.observed.len()
            + self.halo.len() * 4
    }

    /// Lowers the node range `[lo, hi)` of a resident graph into a shard.
    ///
    /// Potentials are interned and halo slots assigned while scanning the
    /// graph's arcs in ascending arc id order — the contract the streaming
    /// lowerer reproduces, so both paths emit identical shards.
    pub fn compile_range(graph: &BeliefGraph, lo: u32, hi: u32) -> ExecShard {
        let local = (hi - lo) as usize;
        let in_range = |v: u32| v >= lo && v < hi;

        let mut pot_pool: Vec<f32> = Vec::new();
        let mut pool_matrices = 0u32;
        let mut dedup: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut arc_pot: HashMap<u32, u32> = HashMap::new();
        let mut halo: Vec<u32> = Vec::new();
        let mut halo_slot: HashMap<u32, u32> = HashMap::new();
        for a in 0..graph.num_arcs() as u32 {
            let arc = graph.arc(a);
            if !in_range(arc.dst) {
                continue;
            }
            let data = graph.potential(a).data();
            let key: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
            let off = *dedup.entry(key).or_insert_with(|| {
                let at = pot_pool.len();
                assert!(
                    at + data.len() <= u32::MAX as usize,
                    "shard potential pool exceeds u32 indexing"
                );
                pot_pool.extend_from_slice(data);
                pool_matrices += 1;
                at as u32
            });
            arc_pot.insert(a, off);
            if !in_range(arc.src) {
                halo_slot.entry(arc.src).or_insert_with(|| {
                    halo.push(arc.src);
                    (halo.len() - 1) as u32
                });
            }
        }

        let mut node_off = Vec::with_capacity(local + halo.len() + 1);
        let mut off = 0u64;
        for v in lo..hi {
            node_off.push(off as u32);
            off += graph.cardinality(v) as u64;
        }
        for &g in &halo {
            node_off.push(off as u32);
            off += graph.cardinality(g) as u64;
        }
        assert!(
            off <= u32::MAX as u64,
            "packed shard belief array exceeds u32 indexing"
        );
        node_off.push(off as u32);

        let mut priors = Vec::with_capacity(node_off[local] as usize);
        for v in lo..hi {
            priors.extend_from_slice(graph.priors()[v as usize].as_slice());
        }

        let mut in_off = Vec::with_capacity(local + 1);
        let mut in_arcs = Vec::new();
        for v in lo..hi {
            in_off.push(in_arcs.len() as u32);
            for &a in graph.in_arcs(v) {
                let arc = graph.arc(a);
                let m = graph.potential(a);
                let slot = if in_range(arc.src) {
                    (arc.src - lo) as usize
                } else {
                    local + halo_slot[&arc.src] as usize
                };
                in_arcs.push(PackedArc {
                    src_off: node_off[slot],
                    pot_off: arc_pot[&a],
                    src_card: m.rows() as u16,
                    dst_card: m.cols() as u16,
                });
            }
        }
        in_off.push(in_arcs.len() as u32);

        ExecShard {
            range: (lo, hi),
            node_off: node_off.into(),
            priors: priors.into(),
            in_off: in_off.into(),
            in_arcs: in_arcs.into(),
            pot_pool: pot_pool.into(),
            pool_matrices,
            observed: graph.observed()[lo as usize..hi as usize].to_vec(),
            halo,
        }
    }

    /// Validates every structural invariant the sharded engine relies on.
    /// Deserializers call this so a corrupted blob or spill file surfaces
    /// as an error instead of an out-of-bounds panic mid-sweep.
    pub fn validate(&self) -> Result<(), String> {
        if self.range.1 < self.range.0 {
            return Err(format!("shard range {:?} is inverted", self.range));
        }
        let local = self.local_nodes();
        let slots = local + self.halo.len();
        if self.node_off.len() != slots + 1 {
            return Err(format!(
                "node_off has {} entries, expected {} (local {local} + halo {})",
                self.node_off.len(),
                slots + 1,
                self.halo.len()
            ));
        }
        check_prefix_offsets("shard node_off", &self.node_off, self.packed_len())?;
        if self.in_off.len() != local + 1 {
            return Err(format!(
                "in_off has {} entries, expected {}",
                self.in_off.len(),
                local + 1
            ));
        }
        check_prefix_offsets("shard in_off", &self.in_off, self.in_arcs.len())?;
        if self.priors.len() != self.local_len() {
            return Err(format!(
                "priors hold {} floats, expected {}",
                self.priors.len(),
                self.local_len()
            ));
        }
        if self.observed.len() != local {
            return Err(format!(
                "observed has {} flags, expected {local}",
                self.observed.len()
            ));
        }
        check_arcs(&self.in_arcs, self.packed_len(), self.pot_pool.len())
    }
}

/// Everything the sharded engine needs besides the shard arrays
/// themselves: the partition, the frontier layout, and the per-shard
/// boundary copy lists.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedMeta {
    /// Total node count.
    pub num_nodes: usize,
    /// Per-node cardinalities (global).
    pub cards: Vec<u8>,
    /// The K contiguous `[lo, hi)` ranges, covering `0..num_nodes`.
    pub ranges: Vec<(u32, u32)>,
    /// Global ids of the boundary nodes (imported by some shard), sorted
    /// ascending — the frontier slot order.
    pub frontier: Vec<u32>,
    /// `frontier.len() + 1` prefix offsets into the packed frontier array.
    pub frontier_off: Vec<u32>,
    /// Initial frontier contents: each boundary node's starting belief.
    pub frontier_init: Vec<f32>,
    /// Per shard: copies from the frontier into its halo slots, in halo
    /// slot order.
    pub imports: Vec<Vec<ShardCopy>>,
    /// Per shard: copies from its local region into the frontier, in
    /// ascending global id order.
    pub exports: Vec<Vec<ShardCopy>>,
    /// The uniform cardinality, when every node shares one.
    pub uniform_card: Option<u8>,
    /// Total arc count across shards.
    pub total_arcs: usize,
}

impl ShardedMeta {
    /// Packed length of the frontier array.
    #[inline]
    pub fn frontier_len(&self) -> usize {
        self.frontier_off.last().copied().unwrap_or(0) as usize
    }

    /// Frontier slot index of global node `gid`, when it is a boundary
    /// node.
    #[inline]
    pub fn frontier_slot(&self, gid: u32) -> Option<usize> {
        self.frontier.binary_search(&gid).ok()
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Builds the meta for a set of compiled shards: the frontier is the
    /// sorted union of the shards' halos, imports follow each shard's
    /// halo slot order, exports each owner's ascending id order.
    /// `frontier_init` is zeroed — the caller seeds it (e.g. from priors)
    /// via [`ShardedMeta::frontier_slot`] / `frontier_off`.
    pub fn assemble(cards: Vec<u8>, ranges: Vec<(u32, u32)>, shards: &[ExecShard]) -> ShardedMeta {
        let num_nodes = cards.len();
        let mut frontier: Vec<u32> = shards.iter().flat_map(|s| s.halo.iter().copied()).collect();
        frontier.sort_unstable();
        frontier.dedup();
        let mut frontier_off = Vec::with_capacity(frontier.len() + 1);
        let mut off = 0u32;
        for &gid in &frontier {
            frontier_off.push(off);
            off += cards[gid as usize] as u32;
        }
        frontier_off.push(off);

        let slot_of = |gid: u32| frontier.binary_search(&gid).unwrap();
        let imports = shards
            .iter()
            .map(|s| {
                let local = s.local_nodes();
                s.halo
                    .iter()
                    .enumerate()
                    .map(|(i, &gid)| ShardCopy {
                        local_off: s.node_off[local + i],
                        frontier_off: frontier_off[slot_of(gid)],
                        card: cards[gid as usize] as u16,
                    })
                    .collect()
            })
            .collect();
        let exports = shards
            .iter()
            .map(|s| {
                let (lo, hi) = s.range;
                let from = frontier.partition_point(|&g| g < lo);
                let to = frontier.partition_point(|&g| g < hi);
                frontier[from..to]
                    .iter()
                    .map(|&gid| ShardCopy {
                        local_off: s.node_off[(gid - lo) as usize],
                        frontier_off: frontier_off[slot_of(gid)],
                        card: cards[gid as usize] as u16,
                    })
                    .collect()
            })
            .collect();

        let uniform_card = cards
            .first()
            .copied()
            .filter(|&c| cards.iter().all(|&x| x == c));
        ShardedMeta {
            num_nodes,
            cards,
            ranges,
            frontier_init: vec![0.0; off as usize],
            frontier,
            frontier_off,
            imports,
            exports,
            uniform_card,
            total_arcs: shards.iter().map(|s| s.in_arcs.len()).sum(),
        }
    }
}

/// A fully resident sharded plan: the meta plus every shard in memory.
/// (The `credo-stream` spill mode holds the same data with shards parked
/// on disk instead.)
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedExec {
    /// Partition, frontier and boundary-exchange metadata.
    pub meta: ShardedMeta,
    /// The K shards, in range order.
    pub shards: Vec<ExecShard>,
}

impl ShardedExec {
    /// Compiles a resident graph into `k` contiguous shards balanced by
    /// in-arc count, with the frontier seeded from the graph's current
    /// beliefs (== priors on a freshly built graph, and the observed
    /// one-hot for observed boundary nodes).
    pub fn compile(graph: &BeliefGraph, k: usize) -> ShardedExec {
        let n = graph.num_nodes();
        let degrees: Vec<u32> = (0..n as u32)
            .map(|v| graph.in_arcs(v).len() as u32)
            .collect();
        let ranges = partition_ranges(&degrees, k);
        let shards: Vec<ExecShard> = ranges
            .iter()
            .map(|&(lo, hi)| ExecShard::compile_range(graph, lo, hi))
            .collect();
        let cards: Vec<u8> = (0..n as u32).map(|v| graph.cardinality(v) as u8).collect();
        let mut meta = ShardedMeta::assemble(cards, ranges, &shards);
        for (i, &gid) in meta.frontier.iter().enumerate() {
            let lo = meta.frontier_off[i] as usize;
            let b = graph.beliefs()[gid as usize].as_slice();
            meta.frontier_init[lo..lo + b.len()].copy_from_slice(b);
        }
        ShardedExec { meta, shards }
    }

    /// Total bytes across all shard arrays (the frontier and meta are
    /// negligible next to it).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

/// Splits `0..weights.len()` into `k` contiguous ranges with roughly equal
/// weight sums (the last range absorbs any remainder). Deterministic; some
/// trailing ranges may be empty when `k` exceeds the node count.
pub fn partition_ranges(weights: &[u32], k: usize) -> Vec<(u32, u32)> {
    let n = weights.len();
    let k = k.max(1);
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut ranges = Vec::with_capacity(k);
    let mut lo = 0usize;
    let mut cum = 0u64;
    for i in 0..k {
        let mut hi = lo;
        if i == k - 1 {
            hi = n;
        } else {
            let target = total * (i as u64 + 1) / k as u64;
            // Force-take one node when the target is already met, so only
            // trailing ranges can be empty.
            while hi < n && (cum < target || hi == lo) {
                cum += weights[hi] as u64;
                hi += 1;
            }
        }
        ranges.push((lo as u32, hi as u32));
        lo = hi;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{synthetic, GenOptions, PotentialKind};
    use crate::ExecGraph;

    fn sharded(n: usize, e: usize, k: usize, seed: u64) -> (BeliefGraph, ShardedExec) {
        let g = synthetic(n, e, &GenOptions::new(2).with_seed(seed));
        let sx = ShardedExec::compile(&g, k);
        (g, sx)
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let w = [5u32, 1, 1, 1, 5, 1, 1, 1, 5, 1];
        for k in [1usize, 2, 3, 5, 10, 16] {
            let r = partition_ranges(&w, k);
            assert_eq!(r.len(), k);
            assert_eq!(r[0].0, 0);
            assert_eq!(r[k - 1].1, w.len() as u32);
            for pair in r.windows(2) {
                assert_eq!(pair[0].1, pair[1].0);
            }
        }
    }

    #[test]
    fn partition_balances_by_weight() {
        let w = vec![1u32; 1000];
        let r = partition_ranges(&w, 4);
        for &(lo, hi) in &r {
            let len = (hi - lo) as usize;
            assert!((200..=300).contains(&len), "unbalanced range {lo}..{hi}");
        }
    }

    #[test]
    fn single_shard_matches_exec_graph() {
        let (g, sx) = sharded(50, 150, 1, 7);
        let x = ExecGraph::compile(&g);
        assert_eq!(sx.shards.len(), 1);
        let s = &sx.shards[0];
        assert!(s.halo.is_empty());
        assert!(sx.meta.frontier.is_empty());
        assert_eq!(s.pot_pool, x.pot_pool());
        assert_eq!(s.packed_len(), x.packed_len());
        assert_eq!(s.priors, x.priors());
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(s.in_arcs_of(v as usize), x.in_arcs(v));
        }
    }

    #[test]
    fn shard_arcs_resolve_to_graph_data() {
        let (g, sx) = sharded(80, 320, 4, 3);
        for s in &sx.shards {
            let (lo, _) = s.range;
            // Inverse slot map: slot -> global id.
            let slot_gid = |off: u32| -> u32 {
                let slot = s.node_off.partition_point(|&o| o <= off) - 1;
                if slot < s.local_nodes() {
                    lo + slot as u32
                } else {
                    s.halo[slot - s.local_nodes()]
                }
            };
            for v in 0..s.local_nodes() {
                let gv = lo + v as u32;
                let direct = g.in_arcs(gv);
                let packed = s.in_arcs_of(v);
                assert_eq!(direct.len(), packed.len());
                for (&a, p) in direct.iter().zip(packed) {
                    let arc = g.arc(a);
                    assert_eq!(slot_gid(p.src_off), arc.src);
                    assert_eq!(p.src_card as usize, g.cardinality(arc.src));
                    assert_eq!(p.dst_card as usize, g.cardinality(arc.dst));
                    assert_eq!(s.potential(p), g.potential(a).data());
                }
            }
        }
    }

    #[test]
    fn frontier_is_the_union_of_halos_with_consistent_copies() {
        let (g, sx) = sharded(60, 240, 3, 11);
        let meta = &sx.meta;
        // Every halo node appears in the frontier; every import points at
        // its halo slot, every export at the owner's local slot.
        for (k, s) in sx.shards.iter().enumerate() {
            assert_eq!(meta.imports[k].len(), s.halo.len());
            for (i, (&gid, imp)) in s.halo.iter().zip(&meta.imports[k]).enumerate() {
                let fslot = meta.frontier_slot(gid).expect("halo node in frontier");
                assert_eq!(imp.frontier_off, meta.frontier_off[fslot]);
                assert_eq!(imp.local_off, s.node_off[s.local_nodes() + i]);
                assert_eq!(imp.card as usize, g.cardinality(gid));
            }
            for exp in &meta.exports[k] {
                assert!(exp.local_off < s.local_len() as u32);
            }
        }
        // Exports cover the whole frontier exactly once.
        let mut covered: Vec<u32> = meta
            .exports
            .iter()
            .flatten()
            .map(|c| c.frontier_off)
            .collect();
        covered.sort_unstable();
        let expected: Vec<u32> = meta.frontier_off[..meta.frontier.len()].to_vec();
        assert_eq!(covered, expected);
        // Frontier init carries the graph's beliefs.
        for (i, &gid) in meta.frontier.iter().enumerate() {
            let lo = meta.frontier_off[i] as usize;
            let b = g.beliefs()[gid as usize].as_slice();
            assert_eq!(&meta.frontier_init[lo..lo + b.len()], b);
        }
    }

    #[test]
    fn shards_cover_all_arcs_exactly_once() {
        let (g, sx) = sharded(70, 280, 8, 5);
        assert_eq!(sx.meta.total_arcs, g.num_arcs());
        let sum: usize = sx.shards.iter().map(|s| s.in_arcs.len()).sum();
        assert_eq!(sum, g.num_arcs());
    }

    #[test]
    fn per_edge_potentials_intern_per_shard() {
        let opts = GenOptions::new(2)
            .with_seed(13)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let g = synthetic(40, 120, &opts);
        let sx = ShardedExec::compile(&g, 4);
        for s in &sx.shards {
            assert_eq!(s.pool_matrices as usize, s.in_arcs.len());
        }
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let (_, sx) = sharded(3, 6, 8, 2);
        assert_eq!(sx.meta.num_shards(), 8);
        let covered: usize = sx.shards.iter().map(|s| s.local_nodes()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn observed_flags_land_in_their_shard() {
        let mut g = synthetic(30, 90, &GenOptions::new(2).with_seed(1));
        g.observe(17, 0);
        let sx = ShardedExec::compile(&g, 3);
        let mut seen = false;
        for s in &sx.shards {
            let (lo, hi) = s.range;
            if (lo..hi).contains(&17) {
                assert!(s.observed[(17 - lo) as usize]);
                seen = true;
            }
        }
        assert!(seen);
    }
}
