/root/repo/target/release/deps/exp_par_speedup-fa6447e80cdc81e9.d: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

/root/repo/target/release/deps/libexp_par_speedup-fa6447e80cdc81e9.rmeta: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

crates/bench/src/bin/exp_par_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
