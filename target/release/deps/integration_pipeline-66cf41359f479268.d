/root/repo/target/release/deps/integration_pipeline-66cf41359f479268.d: crates/credo/../../tests/integration_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libintegration_pipeline-66cf41359f479268.rmeta: crates/credo/../../tests/integration_pipeline.rs Cargo.toml

crates/credo/../../tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
