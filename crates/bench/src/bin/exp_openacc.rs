//! §2.4 — the OpenACC parallelization attempt.
//!
//! Paper: "At best, OpenACC offers a 1.25x increase in performance for the
//! K21 graph with the Edge paradigm"; results only become acceptable after
//! overriding the default scheduler to keep data resident and batch the
//! convergence transfer.

use credo::engines::{OpenAccEngine, SeqEdgeEngine, SeqNodeEngine};
use credo::{BpEngine, BpOptions, Paradigm};
use credo_bench::report::{fmt_secs, fmt_speedup, save_json, Table};
use credo_bench::runner::run_clean;
use credo_bench::scale_from_args;
use credo_bench::suite::bold_subset;
use credo_gpusim::{Device, PASCAL_GTX1070};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    paradigm: String,
    c_secs: f64,
    openacc_naive_secs: f64,
    openacc_tuned_secs: f64,
    tuned_speedup_vs_c: f64,
}

fn main() {
    let scale = scale_from_args();
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("§2.4: OpenACC-analogue engines vs sequential C (scale: {scale:?}, beliefs: 2)"),
    );
    let opts = credo_bench::apply_max_iters(BpOptions::default());

    let mut table = Table::new(&[
        "Graph",
        "paradigm",
        "C",
        "OpenACC",
        "OpenACC tuned",
        "tuned vs C",
    ]);
    let mut rows = Vec::new();
    for spec in bold_subset() {
        for paradigm in [Paradigm::Edge, Paradigm::Node] {
            let mut g = spec.generate(scale, 2);
            let seq: Box<dyn BpEngine> = match paradigm {
                Paradigm::Edge => Box::new(SeqEdgeEngine),
                _ => Box::new(SeqNodeEngine),
            };
            let base = run_clean(seq.as_ref(), &mut g, &opts).unwrap();
            let naive = OpenAccEngine::new(Device::new(PASCAL_GTX1070), paradigm);
            let naive_stats = match run_clean(&naive, &mut g, &opts) {
                Ok(s) => s,
                Err(_) => continue, // exceeds VRAM
            };
            let tuned = OpenAccEngine::new(Device::new(PASCAL_GTX1070), paradigm).tuned();
            let tuned_stats = run_clean(&tuned, &mut g, &opts).unwrap();
            let speedup =
                base.reported_time.as_secs_f64() / tuned_stats.reported_time.as_secs_f64();
            table.row(&[
                spec.abbrev.to_string(),
                paradigm.to_string(),
                fmt_secs(base.reported_time.as_secs_f64()),
                fmt_secs(naive_stats.reported_time.as_secs_f64()),
                fmt_secs(tuned_stats.reported_time.as_secs_f64()),
                fmt_speedup(speedup),
            ]);
            rows.push(Row {
                graph: spec.abbrev.to_string(),
                paradigm: paradigm.to_string(),
                c_secs: base.reported_time.as_secs_f64(),
                openacc_naive_secs: naive_stats.reported_time.as_secs_f64(),
                openacc_tuned_secs: tuned_stats.reported_time.as_secs_f64(),
                tuned_speedup_vs_c: speedup,
            });
        }
    }
    table.print();
    if let Some(best) = rows.iter().max_by(|a, b| {
        a.tuned_speedup_vs_c
            .partial_cmp(&b.tuned_speedup_vs_c)
            .unwrap()
    }) {
        println!(
            "\nBest OpenACC (tuned) speedup vs C: {} on {} ({}) — paper: 1.25x on K21 Edge",
            fmt_speedup(best.tuned_speedup_vs_c),
            best.graph,
            best.paradigm
        );
    }
    if let Ok(p) = save_json("openacc", &rows) {
        println!("JSON: {}", p.display());
    }
}
