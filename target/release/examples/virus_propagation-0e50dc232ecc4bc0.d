/root/repo/target/release/examples/virus_propagation-0e50dc232ecc4bc0.d: crates/credo/../../examples/virus_propagation.rs Cargo.toml

/root/repo/target/release/examples/libvirus_propagation-0e50dc232ecc4bc0.rmeta: crates/credo/../../examples/virus_propagation.rs Cargo.toml

crates/credo/../../examples/virus_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
