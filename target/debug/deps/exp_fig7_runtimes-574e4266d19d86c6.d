/root/repo/target/debug/deps/exp_fig7_runtimes-574e4266d19d86c6.d: crates/bench/src/bin/exp_fig7_runtimes.rs

/root/repo/target/debug/deps/exp_fig7_runtimes-574e4266d19d86c6: crates/bench/src/bin/exp_fig7_runtimes.rs

crates/bench/src/bin/exp_fig7_runtimes.rs:
