/root/repo/target/debug/deps/credo-e5c22575a8e901c0.d: crates/credo/src/lib.rs crates/credo/src/selector.rs

/root/repo/target/debug/deps/libcredo-e5c22575a8e901c0.rlib: crates/credo/src/lib.rs crates/credo/src/selector.rs

/root/repo/target/debug/deps/libcredo-e5c22575a8e901c0.rmeta: crates/credo/src/lib.rs crates/credo/src/selector.rs

crates/credo/src/lib.rs:
crates/credo/src/selector.rs:
