/root/repo/target/release/deps/exp_openmp-a2d566af927ca461.d: crates/bench/src/bin/exp_openmp.rs Cargo.toml

/root/repo/target/release/deps/libexp_openmp-a2d566af927ca461.rmeta: crates/bench/src/bin/exp_openmp.rs Cargo.toml

crates/bench/src/bin/exp_openmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
