//! Concurrency helpers for kernel code.

use std::sync::atomic::{AtomicU32, Ordering};

/// Atomic multiply of an `f32` stored in an [`AtomicU32`] — the CAS loop a
/// GPU `atomicCAS`-based floating-point multiply performs. Returns the
/// number of CAS retries (useful for contention diagnostics).
#[inline]
pub fn atomic_mul_f32(cell: &AtomicU32, factor: f32) -> u32 {
    let mut retries = 0;
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) * factor).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return retries,
            Err(observed) => {
                cur = observed;
                retries += 1;
            }
        }
    }
}

/// A shareable mutable slice for scatter-writes to *disjoint* indices from
/// concurrently executing simulated thread blocks (the standard CUDA
/// output-array write pattern).
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes go to disjoint indices by caller contract.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No two simulated threads may write the same index during one kernel,
    /// and nothing may read the index concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: bounds asserted; disjointness is the caller's contract.
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// The index must not be written concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        // SAFETY: bounds asserted; absence of concurrent writers is the
        // caller's contract.
        unsafe { self.ptr.add(index).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_mul_multiplies() {
        let cell = AtomicU32::new(0.5f32.to_bits());
        let retries = atomic_mul_f32(&cell, 4.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 2.0);
        assert_eq!(retries, 0, "uncontended CAS should not retry");
    }

    #[test]
    fn atomic_mul_is_commutative_under_races() {
        let cell = AtomicU32::new(1.0f32.to_bits());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for _ in 0..100 {
                        atomic_mul_f32(cell, 1.01);
                    }
                });
            }
        });
        let expected = 1.01f64.powi(400);
        let got = f32::from_bits(cell.load(Ordering::Relaxed)) as f64;
        assert!((got / expected - 1.0).abs() < 1e-2, "{got} vs {expected}");
    }

    #[test]
    fn shared_slice_read_write() {
        let mut v = vec![0u64; 8];
        let s = SharedSlice::new(&mut v);
        unsafe {
            s.write(3, 42);
            assert_eq!(s.read(3), 42);
        }
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(v[3], 42);
    }
}
