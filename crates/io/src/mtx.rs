//! The Credo MTX-derived streaming format (§3.2).
//!
//! "We break up the format in two: one for node data and the other for edge
//! data. For both files, our structure is largely the same: two identifiers
//! followed by the probabilities for the node's states or the edge's joint
//! probability matrix. In preserving the original input format's basic
//! structure of edges linked together by node ids, our node input format
//! appears to be nothing but self-cycling nodes."
//!
//! Concretely (1-based ids, as in Matrix Market):
//!
//! ```text
//! # nodes file                      # edges file
//! %%CredoMTX nodes                  %%CredoMTX edges
//! % comments…                       % shared-potential 2 2 0.9 0.1 0.1 0.9
//! 4 4 4                             4 4 3
//! 1 1 0.25 0.75                     1 2
//! 2 2 0.5 0.5                       2 3 0.8 0.2 0.3 0.7   (per-edge mode)
//! …                                 …
//! ```
//!
//! The header line is `rows cols nnz` (Matrix Market convention); for the
//! node file `nnz` is the node count, for the edge file the edge count.
//! Edge lines carry a row-major joint matrix when in per-edge mode and
//! nothing beyond the two ids when a `% shared-potential` directive is
//! present. Both files parse line by line — neither is ever resident in
//! memory (unlike BIF, §3.2).

use crate::error::IoError;
use credo_graph::{Belief, BeliefGraph, GraphBuilder, JointMatrix, MAX_BELIEFS};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const FORMAT: &str = "Credo-MTX";

/// Reads a graph from node and edge files on disk.
pub fn read_files(nodes: &Path, edges: &Path) -> Result<BeliefGraph, IoError> {
    let nf = std::fs::File::open(nodes)?;
    let ef = std::fs::File::open(edges)?;
    read(BufReader::new(nf), BufReader::new(ef))
}

/// Reads a graph from any pair of readers (node data, edge data).
pub fn read<R1: Read, R2: Read>(nodes: R1, edges: R2) -> Result<BeliefGraph, IoError> {
    let (cards, mut builder) = read_nodes(BufReader::new(nodes))?;
    read_edges(BufReader::new(edges), &cards, &mut builder)?;
    Ok(builder.build()?)
}

fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::parse(FORMAT, line, msg)
}

/// Streams the node file: returns per-node cardinalities and a builder
/// pre-populated with priors.
fn read_nodes<R: BufRead>(mut r: R) -> Result<(Vec<u8>, GraphBuilder), IoError> {
    let mut line = String::new();
    let mut lineno = 0usize;

    // Banner.
    lineno += 1;
    r.read_line(&mut line)?;
    if !line.starts_with("%%CredoMTX") || !line.contains("nodes") {
        return Err(parse_err(lineno, "expected '%%CredoMTX nodes' banner"));
    }

    // Comments, then the size line.
    let (num_nodes, declared) = loop {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            return Err(parse_err(lineno, "missing size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let rows: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        let _cols: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        let nnz: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        break (rows, nnz);
    };
    if declared != num_nodes {
        return Err(parse_err(
            lineno,
            format!("node file declares {declared} entries for {num_nodes} nodes"),
        ));
    }

    let mut builder = GraphBuilder::with_capacity(num_nodes, 0);
    let mut cards = vec![0u8; num_nodes];
    let mut seen = 0usize;
    let mut probs: Vec<f32> = Vec::with_capacity(MAX_BELIEFS);
    loop {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let id1: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad node id"))?;
        let id2: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad node id"))?;
        if id1 != id2 {
            return Err(parse_err(
                lineno,
                format!("node lines are self-cycles; got {id1} {id2}"),
            ));
        }
        if id1 < 1 || id1 > num_nodes {
            return Err(parse_err(lineno, format!("node id {id1} out of range")));
        }
        probs.clear();
        for tok in it {
            let p: f32 = tok
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad probability '{tok}'")))?;
            probs.push(p);
        }
        if probs.is_empty() || probs.len() > MAX_BELIEFS {
            return Err(parse_err(
                lineno,
                format!("node {id1} has {} beliefs (1..={MAX_BELIEFS})", probs.len()),
            ));
        }
        // Node ids must arrive in order so the builder's ids line up; the
        // writer always emits them that way.
        if id1 != seen + 1 {
            return Err(parse_err(
                lineno,
                format!("node ids must be 1..=N in order; got {id1} after {seen}"),
            ));
        }
        let mut b = Belief::from_slice(&probs);
        b.normalize();
        cards[id1 - 1] = probs.len() as u8;
        builder.add_node(b);
        seen += 1;
    }
    if seen != num_nodes {
        return Err(parse_err(
            lineno,
            format!("node file declared {num_nodes} nodes but held {seen}"),
        ));
    }
    Ok((cards, builder))
}

/// Streams the edge file into the builder.
fn read_edges<R: BufRead>(
    mut r: R,
    cards: &[u8],
    builder: &mut GraphBuilder,
) -> Result<(), IoError> {
    let mut line = String::new();
    let mut lineno = 0usize;

    lineno += 1;
    r.read_line(&mut line)?;
    if !line.starts_with("%%CredoMTX") || !line.contains("edges") {
        return Err(parse_err(lineno, "expected '%%CredoMTX edges' banner"));
    }

    let mut shared: Option<JointMatrix> = None;
    // Comments / directives, then the size line.
    let declared_edges = loop {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            return Err(parse_err(lineno, "missing size line"));
        }
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('%') {
            let rest = rest.trim();
            if let Some(spec) = rest.strip_prefix("shared-potential") {
                shared = Some(parse_shared(spec, lineno)?);
            }
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let rows: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        if rows != cards.len() {
            return Err(parse_err(
                lineno,
                format!(
                    "edge file is over {rows} nodes, node file has {}",
                    cards.len()
                ),
            ));
        }
        let _cols: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        let nnz: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad size line"))?;
        break nnz;
    };

    if let Some(m) = &shared {
        builder.shared_potential(m.clone());
    }

    let mut seen = 0usize;
    let mut values: Vec<f32> = Vec::new();
    loop {
        line.clear();
        lineno += 1;
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let src: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad edge source id"))?;
        let dst: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad edge destination id"))?;
        for id in [src, dst] {
            if id < 1 || id > cards.len() {
                return Err(parse_err(lineno, format!("edge node id {id} out of range")));
            }
        }
        let (s, d) = ((src - 1) as u32, (dst - 1) as u32);
        if shared.is_some() {
            if it.next().is_some() {
                return Err(parse_err(
                    lineno,
                    "edge carries a matrix but a shared potential is declared",
                ));
            }
            builder.add_undirected_edge(s, d);
        } else {
            values.clear();
            for tok in it {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad matrix value '{tok}'")))?;
                values.push(v);
            }
            let (rows, cols) = (cards[src - 1] as usize, cards[dst - 1] as usize);
            if values.len() != rows * cols {
                return Err(parse_err(
                    lineno,
                    format!(
                        "edge {src}->{dst} needs a {rows}x{cols} matrix, got {} values",
                        values.len()
                    ),
                ));
            }
            let m = JointMatrix::from_rows(rows, cols, values.clone());
            builder.add_undirected_edge_with(s, d, m);
        }
        seen += 1;
    }
    if seen != declared_edges {
        return Err(parse_err(
            lineno,
            format!("edge file declared {declared_edges} edges but held {seen}"),
        ));
    }
    Ok(())
}

fn parse_shared(spec: &str, lineno: usize) -> Result<JointMatrix, IoError> {
    let mut it = spec.split_ascii_whitespace();
    let rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(lineno, "bad shared-potential rows"))?;
    let cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(lineno, "bad shared-potential cols"))?;
    let values: Result<Vec<f32>, _> = it.map(str::parse).collect();
    let values = values.map_err(|_| parse_err(lineno, "bad shared-potential values"))?;
    if values.len() != rows * cols {
        return Err(parse_err(
            lineno,
            format!(
                "shared-potential needs {rows}x{cols}={} values",
                rows * cols
            ),
        ));
    }
    Ok(JointMatrix::from_rows(rows, cols, values))
}

/// Writes a graph as a (nodes, edges) file pair.
pub fn write_files(graph: &BeliefGraph, nodes: &Path, edges: &Path) -> Result<(), IoError> {
    let nf = std::fs::File::create(nodes)?;
    let ef = std::fs::File::create(edges)?;
    write(graph, BufWriter::new(nf), BufWriter::new(ef))
}

/// Writes a graph to any pair of writers.
pub fn write<W1: Write, W2: Write>(
    graph: &BeliefGraph,
    mut nodes: W1,
    mut edges: W2,
) -> Result<(), IoError> {
    let n = graph.num_nodes();
    writeln!(nodes, "%%CredoMTX nodes")?;
    writeln!(nodes, "{n} {n} {n}")?;
    for (i, b) in graph.priors().iter().enumerate() {
        write!(nodes, "{0} {0}", i + 1)?;
        for &p in b.as_slice() {
            write!(nodes, " {p}")?;
        }
        writeln!(nodes)?;
    }
    nodes.flush()?;

    writeln!(edges, "%%CredoMTX edges")?;
    let shared = graph.potentials().is_shared();
    if shared {
        // Arc 0's forward matrix is the shared potential.
        let m = graph.potentials().get(0, false);
        write!(edges, "% shared-potential {} {}", m.rows(), m.cols())?;
        for &v in m.data() {
            write!(edges, " {v}")?;
        }
        writeln!(edges)?;
    }
    // Emit one line per logical edge: forward (non-reverse) arcs only.
    let forward: Vec<u32> = (0..graph.num_arcs() as u32)
        .filter(|&a| !graph.arc(a).reverse)
        .collect();
    writeln!(edges, "{n} {n} {}", forward.len())?;
    for &a in &forward {
        let arc = graph.arc(a);
        write!(edges, "{} {}", arc.src + 1, arc.dst + 1)?;
        if !shared {
            for &v in graph.potential(a).data() {
                write!(edges, " {v}")?;
            }
        }
        writeln!(edges)?;
    }
    edges.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::generators::{synthetic, GenOptions, PotentialKind};

    fn roundtrip(g: &BeliefGraph) -> BeliefGraph {
        let mut nbuf = Vec::new();
        let mut ebuf = Vec::new();
        write(g, &mut nbuf, &mut ebuf).unwrap();
        read(&nbuf[..], &ebuf[..]).unwrap()
    }

    #[test]
    fn shared_mode_roundtrips() {
        let g = synthetic(40, 160, &GenOptions::new(3).with_seed(2));
        let back = roundtrip(&g);
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_arcs(), g.num_arcs());
        assert!(back.potentials().is_shared());
        for (a, b) in g.priors().iter().zip(back.priors()) {
            assert!(a.linf_diff(b) < 1e-6);
        }
        for (x, y) in g.arcs().iter().zip(back.arcs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn per_edge_mode_roundtrips() {
        let g = synthetic(
            20,
            60,
            &GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom),
        );
        let back = roundtrip(&g);
        assert!(!back.potentials().is_shared());
        for a in 0..g.num_arcs() as u32 {
            let (m1, m2) = (g.potential(a), back.potential(a));
            for p in 0..m1.rows() {
                for c in 0..m1.cols() {
                    assert!((m1.get(p, c) - m2.get(p, c)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn missing_banner_is_rejected() {
        let err = read(&b"1 1 1\n1 1 0.5 0.5\n"[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("banner"));
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n3 3 3\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n3 3 0\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("held 2"), "{err}");
    }

    #[test]
    fn non_self_cycle_node_line_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 2 0.5 0.5\n2 2 0.5 0.5\n";
        let err = read(&nodes[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("self-cycle"), "{err}");
    }

    #[test]
    fn wrong_matrix_size_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n2 2 1\n1 2 0.9 0.1\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("2x2 matrix"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let nodes = b"%%CredoMTX nodes\n% a comment\n\n2 2 2\n1 1 0.3 0.7\n\n% more\n2 2 0.6 0.4\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 0.8 0.2 0.2 0.8\n2 2 1\n1 2\n";
        let g = read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!((g.priors()[0].get(1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_edge_id_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n2 2 1\n1 7\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("credo_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = synthetic(30, 90, &GenOptions::new(2).with_seed(4));
        let np = dir.join("g.nodes.mtx");
        let ep = dir.join("g.edges.mtx");
        write_files(&g, &np, &ep).unwrap();
        let back = read_files(&np, &ep).unwrap();
        assert_eq!(back.num_arcs(), g.num_arcs());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn priors_are_normalized_on_load() {
        let nodes = b"%%CredoMTX nodes\n1 1 1\n1 1 2.0 6.0\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n1 1 0\n";
        let g = read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(g.priors()[0].as_slice(), &[0.25, 0.75]);
    }
}
