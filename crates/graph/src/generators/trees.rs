//! Random trees and DAGs for the traditional (non-loopy) BP algorithm
//! (§2.1), which requires acyclic structure.

use super::{assemble, random_prior, GenOptions, PotentialKind};
use crate::builder::GraphBuilder;
use crate::potentials::JointMatrix;
use crate::BeliefGraph;
use rand::Rng;

/// A uniformly random recursive tree: node `i > 0` attaches to a uniformly
/// random parent in `[0, i)`, producing **directed** parent→child arcs (the
/// forward/backward sweeps of traditional BP need the direction).
pub fn random_tree(num_nodes: usize, opts: &GenOptions) -> BeliefGraph {
    assert!(num_nodes >= 1, "tree needs at least one node");
    let mut rng = opts.rng();
    let mut b = GraphBuilder::with_capacity(num_nodes, num_nodes.saturating_sub(1));
    for _ in 0..num_nodes {
        b.add_node(random_prior(opts.beliefs, &mut rng));
    }
    match opts.potentials {
        PotentialKind::SharedSmoothing(eps) => {
            b.shared_potential(JointMatrix::smoothing(opts.beliefs, eps));
            for v in 1..num_nodes as u32 {
                let p = rng.gen_range(0..v);
                b.add_directed_edge(p, v);
            }
        }
        PotentialKind::SharedRandom => {
            b.shared_potential(JointMatrix::random(opts.beliefs, opts.beliefs, &mut rng));
            for v in 1..num_nodes as u32 {
                let p = rng.gen_range(0..v);
                b.add_directed_edge(p, v);
            }
        }
        PotentialKind::PerEdgeRandom => {
            for v in 1..num_nodes as u32 {
                let p = rng.gen_range(0..v);
                let m = JointMatrix::random(opts.beliefs, opts.beliefs, &mut rng);
                b.add_directed_edge_with(p, v, m);
            }
        }
    }
    b.build().expect("generated tree must be valid")
}

/// A random DAG: the tree above plus `extra_edges` additional undirected
/// shortcut edges (giving loopy structure while keeping a known spanning
/// tree). Used to compare loopy BP against the tree algorithm on graphs
/// that are "almost" trees.
pub fn random_dag(num_nodes: usize, extra_edges: usize, opts: &GenOptions) -> BeliefGraph {
    assert!(num_nodes >= 2, "DAG needs at least two nodes");
    let mut rng = opts.rng();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(num_nodes - 1 + extra_edges);
    for v in 1..num_nodes as u32 {
        let p = rng.gen_range(0..v);
        edges.push((p, v));
    }
    for _ in 0..extra_edges {
        let v = rng.gen_range(1..num_nodes as u32);
        let p = rng.gen_range(0..v);
        edges.push((p, v));
    }
    assemble(num_nodes, &edges, opts, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_n_minus_one_arcs() {
        let g = random_tree(50, &GenOptions::new(2));
        assert_eq!(g.num_arcs(), 49);
        assert_eq!(g.num_edges(), 49);
    }

    #[test]
    fn tree_arcs_point_from_lower_to_higher_ids() {
        let g = random_tree(64, &GenOptions::new(3));
        assert!(
            g.arcs().iter().all(|a| a.src < a.dst),
            "acyclic by construction"
        );
    }

    #[test]
    fn every_nonroot_has_exactly_one_parent() {
        let g = random_tree(40, &GenOptions::new(2));
        assert_eq!(g.in_arcs(0).len(), 0, "root has no parent");
        for v in 1..40u32 {
            assert_eq!(g.in_arcs(v).len(), 1, "node {v}");
        }
    }

    #[test]
    fn dag_adds_extra_edges() {
        let g = random_dag(30, 10, &GenOptions::new(2));
        assert_eq!(g.num_edges(), 29 + 10);
        // Undirected assembly doubles the arcs.
        assert_eq!(g.num_arcs(), 2 * (29 + 10));
    }

    #[test]
    fn single_node_tree() {
        let g = random_tree(1, &GenOptions::new(2));
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_arcs(), 0);
    }
}
