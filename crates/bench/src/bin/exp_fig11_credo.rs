//! Figure 11 — execution time of Credo (classifier-driven selection) vs
//! the naive baseline of always running C Edge, "with all execution
//! overheads included".
//!
//! Paper: no improvement for very small graphs, the Node paradigm starts
//! paying off around 1,000 nodes, and from 100,000 nodes the CUDA
//! implementations win consistently, with the exact crossover set by the
//! belief count.

use credo::{BpOptions, Credo, Selector};
use credo_bench::dataset::{labels, load_or_build};
use credo_bench::report::{fmt_secs, fmt_speedup, save_json, Table};
use credo_bench::runner::run_clean;
use credo_bench::scale_from_args;
use credo_bench::suite::{BELIEF_CONFIGS, TABLE1};
use credo_gpusim::PASCAL_GTX1070;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    nodes: usize,
    beliefs: usize,
    chosen: String,
    credo_secs: f64,
    c_edge_secs: f64,
    speedup: f64,
}

fn main() {
    let scale = scale_from_args();
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("Fig 11: Credo vs always-C-Edge (scale: {scale:?})"),
    );
    credo_bench::progress(&prog, "Benchmarking to train the selector…");
    let opts = credo_bench::apply_max_iters(BpOptions::default());
    let records = load_or_build(scale, PASCAL_GTX1070, &opts, 3, false);
    let features: Vec<_> = records.iter().map(|r| r.features).collect();
    let selector = Selector::train(&features, &labels(&records));
    let credo = Credo::new(PASCAL_GTX1070).with_selector(selector);

    let mut table = Table::new(&[
        "Graph", "nodes", "k", "chosen", "Credo", "C Edge", "speedup",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    let mut sorted: Vec<_> = TABLE1.to_vec();
    sorted.sort_by_key(|s| s.nodes);
    for spec in &sorted {
        for &k in &BELIEF_CONFIGS {
            let mut g = spec.generate(scale, k);
            g.reset_beliefs();
            let (chosen, stats) = credo.run(&mut g, &opts).expect("credo run");
            credo.device().reset_clock();
            let baseline = run_clean(&credo::engines::SeqEdgeEngine, &mut g, &opts).unwrap();
            let speedup = baseline.reported_time.as_secs_f64() / stats.reported_time.as_secs_f64();
            table.row(&[
                spec.abbrev.to_string(),
                g.num_nodes().to_string(),
                k.to_string(),
                chosen.to_string(),
                fmt_secs(stats.reported_time.as_secs_f64()),
                fmt_secs(baseline.reported_time.as_secs_f64()),
                fmt_speedup(speedup),
            ]);
            rows.push(Row {
                graph: spec.abbrev.to_string(),
                nodes: g.num_nodes(),
                beliefs: k,
                chosen: chosen.to_string(),
                credo_secs: stats.reported_time.as_secs_f64(),
                c_edge_secs: baseline.reported_time.as_secs_f64(),
                speedup,
            });
        }
    }
    table.print();

    let total_credo: f64 = rows.iter().map(|r| r.credo_secs).sum();
    let total_edge: f64 = rows.iter().map(|r| r.c_edge_secs).sum();
    let never_slower = rows.iter().filter(|r| r.speedup >= 0.95).count();
    println!(
        "\nSuite totals: Credo {} vs C Edge {} ({} overall); within 5% of C Edge or better on {}/{} configs",
        fmt_secs(total_credo),
        fmt_secs(total_edge),
        fmt_speedup(total_edge / total_credo),
        never_slower,
        rows.len()
    );
    if let Ok(p) = save_json("fig11_credo", &rows) {
        println!("JSON: {}", p.display());
    }
}
