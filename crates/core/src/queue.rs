//! Work queues of unconverged elements (§3.5).
//!
//! "Instead of operating on a full list of node or edge indices … the
//! queues merely consist of the indices of unconverged nodes or edges.
//! However, after every iteration, the queue clears itself and populates
//! atomically with the indices of elements which have yet to converge."
//!
//! The queue here is node-granular; edge paradigms derive their active arc
//! set as "arcs whose destination is queued", which is what makes the Fig 9
//! asymmetry possible: one straggler hub keeps a single entry in the node
//! queue but keeps *all* of its incoming arcs active in the edge queue.

/// A double-buffered queue of active node indices.
#[derive(Clone, Debug)]
pub struct WorkQueue {
    active: Vec<u32>,
    next: Vec<u32>,
    queued_next: Vec<bool>,
    eligible: Vec<bool>,
}

impl WorkQueue {
    /// Builds a queue over `num_nodes` nodes, initially containing every
    /// node for which `eligible` returns true (engines pass
    /// `!observed[v]`).
    pub fn new(num_nodes: usize, eligible: impl Fn(usize) -> bool) -> Self {
        let eligible: Vec<bool> = (0..num_nodes).map(eligible).collect();
        let active: Vec<u32> = (0..num_nodes as u32)
            .filter(|&v| eligible[v as usize])
            .collect();
        WorkQueue {
            active,
            next: Vec::with_capacity(num_nodes),
            queued_next: vec![false; num_nodes],
            eligible,
        }
    }

    /// The node indices to process this iteration.
    #[inline]
    pub fn active(&self) -> &[u32] {
        &self.active
    }

    /// True when nothing is left to process.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Current queue length.
    #[inline]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Enqueues `v` for the next iteration (deduplicated; ineligible nodes
    /// are ignored).
    #[inline]
    pub fn push_next(&mut self, v: u32) {
        let i = v as usize;
        if self.eligible[i] && !self.queued_next[i] {
            self.queued_next[i] = true;
            self.next.push(v);
        }
    }

    /// Bulk-enqueues from a parallel repopulation: `flags[v]` was set
    /// atomically during the iteration. Merges with anything already pushed
    /// via [`WorkQueue::push_next`].
    ///
    /// Scans every node's flag; when only a small active set could have
    /// been flagged, prefer [`WorkQueue::push_next_from_flags_among`].
    pub fn push_next_from_flags(&mut self, flags: &[std::sync::atomic::AtomicBool]) {
        use std::sync::atomic::Ordering;
        debug_assert_eq!(flags.len(), self.queued_next.len());
        for (v, f) in flags.iter().enumerate() {
            if f.swap(false, Ordering::Relaxed) {
                self.push_next(v as u32);
            }
        }
    }

    /// Like [`WorkQueue::push_next_from_flags`], but inspects only
    /// `candidates` — the nodes this iteration could actually have flagged
    /// (its active set) — instead of walking the whole flag array. Returns
    /// the candidates whose flag was set, in `candidates` order, so the
    /// caller can wake their neighbourhoods without re-reading flags.
    ///
    /// Flags outside `candidates` are left untouched; callers switching
    /// between the two repopulation paths must not leave stale flags
    /// behind.
    pub fn push_next_from_flags_among(
        &mut self,
        candidates: &[u32],
        flags: &[std::sync::atomic::AtomicBool],
    ) -> Vec<u32> {
        use std::sync::atomic::Ordering;
        debug_assert_eq!(flags.len(), self.queued_next.len());
        let mut changed = Vec::new();
        for &v in candidates {
            if flags[v as usize].swap(false, Ordering::Relaxed) {
                self.push_next(v);
                changed.push(v);
            }
        }
        changed
    }

    /// Finishes an iteration: the nodes pushed for "next" become the active
    /// set. Keeps ascending order so engine sweeps stay cache-friendly.
    pub fn advance(&mut self) {
        for &v in &self.next {
            self.queued_next[v as usize] = false;
        }
        self.next.sort_unstable();
        std::mem::swap(&mut self.active, &mut self.next);
        self.next.clear();
    }

    /// Resets to "everything eligible is active".
    pub fn reset(&mut self) {
        self.active.clear();
        self.active
            .extend((0..self.eligible.len() as u32).filter(|&v| self.eligible[v as usize]));
        self.next.clear();
        self.queued_next.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn starts_with_all_eligible() {
        let q = WorkQueue::new(5, |v| v != 2);
        assert_eq!(q.active(), &[0, 1, 3, 4]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn push_dedups_and_filters_ineligible() {
        let mut q = WorkQueue::new(4, |v| v != 3);
        q.push_next(1);
        q.push_next(1);
        q.push_next(3); // ineligible (observed)
        q.push_next(0);
        q.advance();
        assert_eq!(q.active(), &[0, 1]);
    }

    #[test]
    fn advance_sorts_ascending() {
        let mut q = WorkQueue::new(10, |_| true);
        for v in [7, 2, 9, 2, 0] {
            q.push_next(v);
        }
        q.advance();
        assert_eq!(q.active(), &[0, 2, 7, 9]);
    }

    #[test]
    fn drains_to_empty() {
        let mut q = WorkQueue::new(3, |_| true);
        q.advance();
        assert!(q.is_empty());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut q = WorkQueue::new(3, |_| true);
        q.advance(); // empty
        q.reset();
        assert_eq!(q.active(), &[0, 1, 2]);
    }

    #[test]
    fn atomic_flag_merge() {
        let mut q = WorkQueue::new(4, |_| true);
        let flags: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
        flags[1].store(true, Ordering::Relaxed);
        flags[3].store(true, Ordering::Relaxed);
        q.push_next(3); // overlap with flags
        q.push_next_from_flags(&flags);
        q.advance();
        assert_eq!(q.active(), &[1, 3]);
        // flags were consumed
        assert!(!flags[1].load(Ordering::Relaxed));
    }

    #[test]
    fn flag_merge_among_candidates() {
        let mut q = WorkQueue::new(6, |v| v != 5);
        let flags: Vec<AtomicBool> = (0..6).map(|_| AtomicBool::new(false)).collect();
        for i in [1, 3, 4, 5] {
            flags[i].store(true, Ordering::Relaxed);
        }
        // Node 4 is flagged but not a candidate; node 5 is ineligible.
        let changed = q.push_next_from_flags_among(&[0, 1, 3, 5], &flags);
        assert_eq!(changed, vec![1, 3, 5]);
        q.advance();
        assert_eq!(q.active(), &[1, 3]);
        // Candidate flags were consumed, non-candidate flags were not.
        assert!(!flags[1].load(Ordering::Relaxed));
        assert!(flags[4].load(Ordering::Relaxed));
    }

    #[test]
    fn reuse_across_iterations() {
        let mut q = WorkQueue::new(3, |_| true);
        q.push_next(2);
        q.advance();
        assert_eq!(q.active(), &[2]);
        q.push_next(2);
        q.push_next(0);
        q.advance();
        assert_eq!(q.active(), &[0, 2]);
    }
}
