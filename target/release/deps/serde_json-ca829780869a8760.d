/root/repo/target/release/deps/serde_json-ca829780869a8760.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ca829780869a8760.rlib: crates/compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ca829780869a8760.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
