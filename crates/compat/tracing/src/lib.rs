//! Offline stand-in for the `tracing` crate (crates.io is unreachable in
//! this build environment; see DESIGN.md's compat-crate policy).
//!
//! The real `tracing` routes spans and events through a thread-local
//! global dispatcher and macro layer. This shim keeps the same three
//! concepts — a [`Subscriber`] that receives structured telemetry, a
//! cheap-to-clone [`Dispatch`] handle, and RAII [`Span`] guards — but
//! passes the dispatch *explicitly* so the hot paths stay auditable and
//! genuinely zero-cost when disabled: a [`Dispatch::none()`] handle is a
//! `None` behind an `#[inline]` check, so every emission site compiles
//! down to a branch on a register.
//!
//! One extension beyond upstream: [`Subscriber::timed_span`] records a
//! span with *caller-supplied* timestamps on a named track. The gpusim
//! kernel profiler uses it to place kernels on the simulated-device
//! timeline (which advances by the timing model, not by wall clock).

use std::sync::Arc;

/// Structured field values carried by spans and events.
pub mod field {
    /// A borrowed field value. Recorders that buffer must copy out of the
    /// `Str` variant.
    #[derive(Clone, Copy, Debug)]
    pub enum Value<'a> {
        /// Unsigned integer.
        U64(u64),
        /// Signed integer.
        I64(i64),
        /// Floating point.
        F64(f64),
        /// Boolean.
        Bool(bool),
        /// Borrowed string.
        Str(&'a str),
    }

    impl From<u64> for Value<'_> {
        fn from(v: u64) -> Self {
            Value::U64(v)
        }
    }

    impl From<u32> for Value<'_> {
        fn from(v: u32) -> Self {
            Value::U64(v as u64)
        }
    }

    impl From<usize> for Value<'_> {
        fn from(v: usize) -> Self {
            Value::U64(v as u64)
        }
    }

    impl From<i64> for Value<'_> {
        fn from(v: i64) -> Self {
            Value::I64(v)
        }
    }

    impl From<f64> for Value<'_> {
        fn from(v: f64) -> Self {
            Value::F64(v)
        }
    }

    impl From<f32> for Value<'_> {
        fn from(v: f32) -> Self {
            Value::F64(v as f64)
        }
    }

    impl From<bool> for Value<'_> {
        fn from(v: bool) -> Self {
            Value::Bool(v)
        }
    }

    impl<'a> From<&'a str> for Value<'a> {
        fn from(v: &'a str) -> Self {
            Value::Str(v)
        }
    }
}

/// A named field: `(key, value)`.
pub type Field<'a> = (&'static str, field::Value<'a>);

/// Opaque identifier of an open span, minted by [`Subscriber::new_span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Id(pub u64);

/// Receiver of spans, events and counters.
///
/// Wall-clock spans (`new_span`/`close_span`) are timestamped by the
/// subscriber itself; simulated-timeline spans arrive pre-timestamped via
/// [`Subscriber::timed_span`].
pub trait Subscriber: Send + Sync {
    /// Whether this subscriber wants anything at all. Emission sites may
    /// skip field construction when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Opens a wall-clock span. Returns an id to pass to
    /// [`Subscriber::close_span`].
    fn new_span(&self, name: &'static str, fields: &[Field<'_>]) -> Id;

    /// Attaches additional fields to an open span (visible when the span
    /// is exported).
    fn record(&self, id: Id, fields: &[Field<'_>]);

    /// Closes a span opened by [`Subscriber::new_span`].
    fn close_span(&self, id: Id);

    /// Records an instantaneous event.
    fn event(&self, name: &'static str, fields: &[Field<'_>]);

    /// Records a completed span with caller-supplied timestamps
    /// (microseconds on the named track's own timeline — e.g. simulated
    /// device time).
    fn timed_span(
        &self,
        track: &'static str,
        name: &'static str,
        start_us: f64,
        end_us: f64,
        fields: &[Field<'_>],
    );

    /// Records a named counter sample.
    fn counter(&self, name: &'static str, value: f64);
}

/// A cheap-to-clone handle to an optional [`Subscriber`].
///
/// `Dispatch::none()` is the no-op recorder: every method inlines to a
/// branch on `Option::None` and does nothing, which is what keeps
/// instrumented hot paths within noise of uninstrumented ones.
#[derive(Clone, Default)]
pub struct Dispatch {
    inner: Option<Arc<dyn Subscriber>>,
}

impl std::fmt::Debug for Dispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatch")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Dispatch {
    /// The no-op dispatch: all emission methods are inlined empty calls.
    #[inline]
    pub fn none() -> Self {
        Dispatch { inner: None }
    }

    /// Wraps a subscriber.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Self {
        Dispatch {
            inner: Some(subscriber),
        }
    }

    /// True when a subscriber is attached and wants telemetry. Emission
    /// sites guard field construction with this.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.inner {
            Some(s) => s.enabled(),
            None => false,
        }
    }

    /// The attached subscriber, if any.
    pub fn subscriber(&self) -> Option<&Arc<dyn Subscriber>> {
        self.inner.as_ref()
    }

    /// Opens a wall-clock span, closed when the returned guard drops.
    #[inline]
    pub fn span<'a>(&'a self, name: &'static str, fields: &[Field<'_>]) -> Span<'a> {
        let id = match &self.inner {
            Some(s) if s.enabled() => Some(s.new_span(name, fields)),
            _ => None,
        };
        Span { dispatch: self, id }
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[Field<'_>]) {
        if let Some(s) = &self.inner {
            if s.enabled() {
                s.event(name, fields);
            }
        }
    }

    /// Records a completed span with caller-supplied timestamps (see
    /// [`Subscriber::timed_span`]).
    #[inline]
    pub fn timed_span(
        &self,
        track: &'static str,
        name: &'static str,
        start_us: f64,
        end_us: f64,
        fields: &[Field<'_>],
    ) {
        if let Some(s) = &self.inner {
            if s.enabled() {
                s.timed_span(track, name, start_us, end_us, fields);
            }
        }
    }

    /// Records a named counter sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: f64) {
        if let Some(s) = &self.inner {
            if s.enabled() {
                s.counter(name, value);
            }
        }
    }
}

/// RAII guard for a wall-clock span: closes it on drop. For the no-op
/// dispatch the guard holds no id and drop does nothing.
pub struct Span<'a> {
    dispatch: &'a Dispatch,
    id: Option<Id>,
}

impl Span<'_> {
    /// Attaches additional fields to the span (e.g. results known only at
    /// the end of the spanned region).
    #[inline]
    pub fn record(&self, fields: &[Field<'_>]) {
        if let (Some(id), Some(s)) = (self.id, &self.dispatch.inner) {
            s.record(id, fields);
        }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let (Some(id), Some(s)) = (self.id, &self.dispatch.inner) {
            s.close_span(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Log {
        lines: Mutex<Vec<String>>,
    }

    impl Subscriber for Log {
        fn new_span(&self, name: &'static str, _fields: &[Field<'_>]) -> Id {
            let mut lines = self.lines.lock().unwrap();
            lines.push(format!("open {name}"));
            Id(lines.len() as u64)
        }

        fn record(&self, id: Id, fields: &[Field<'_>]) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("record {} ({} fields)", id.0, fields.len()));
        }

        fn close_span(&self, id: Id) {
            self.lines.lock().unwrap().push(format!("close {}", id.0));
        }

        fn event(&self, name: &'static str, _fields: &[Field<'_>]) {
            self.lines.lock().unwrap().push(format!("event {name}"));
        }

        fn timed_span(
            &self,
            track: &'static str,
            name: &'static str,
            start_us: f64,
            end_us: f64,
            _fields: &[Field<'_>],
        ) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("timed {track}/{name} {start_us}..{end_us}"));
        }

        fn counter(&self, name: &'static str, value: f64) {
            self.lines
                .lock()
                .unwrap()
                .push(format!("counter {name}={value}"));
        }
    }

    #[test]
    fn none_dispatch_is_disabled_and_silent() {
        let d = Dispatch::none();
        assert!(!d.enabled());
        let span = d.span("nothing", &[]);
        span.record(&[("x", 1u64.into())]);
        drop(span);
        d.event("nothing", &[]);
        d.counter("nothing", 1.0);
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let log = Arc::new(Log::default());
        let d = Dispatch::new(log.clone());
        assert!(d.enabled());
        {
            let span = d.span("iteration", &[("iter", 3u64.into())]);
            span.record(&[("delta", 0.5f64.into())]);
            d.event("inner", &[]);
        }
        d.timed_span("gpu", "kernel", 0.0, 10.0, &[]);
        let lines = log.lines.lock().unwrap();
        assert_eq!(
            *lines,
            vec![
                "open iteration",
                "record 1 (1 fields)",
                "event inner",
                "close 1",
                "timed gpu/kernel 0..10",
            ]
        );
    }
}
