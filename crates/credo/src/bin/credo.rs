//! The `credo` command-line tool.
//!
//! ```text
//! credo prof <graph> [options]    profile BP engines on a graph
//! ```
//!
//! The `prof` subcommand runs a CPU engine and a simulated-GPU engine on
//! the same graph with a recording trace attached, writes the collected
//! records as JSON lines and as a `chrome://tracing` / Perfetto file, and
//! prints an nvprof-style summary of spans, counters and events.

use std::fs::File;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use credo::engines::{
    CudaEdgeEngine, CudaNodeEngine, OpenAccEngine, OpenMpEdgeEngine, OpenMpNodeEngine,
    ParEdgeEngine, ParNodeEngine, SeqEdgeEngine, SeqNodeEngine,
};
use credo::graph::generators::{synthetic, GenOptions};
use credo::graph::BeliefGraph;
use credo::{BpEngine, BpOptions, BpStats, Dispatch};
use credo_gpusim::{Device, PASCAL_GTX1070};
use credo_trace::{ConsoleRecorder, TraceBuffer};

const USAGE: &str = "\
credo — optimized belief propagation (ICPP Workshops 2020)

USAGE:
    credo prof <graph> [options]
    credo prof --stream <nodes.mtx> <edges.mtx> [options]

ARGS:
    <graph>    synthetic spec `NxE` or `NxExK` (nodes x edges x cardinality,
               e.g. `10000x40000`), or a path to a .bif / .xml network;
               with --stream, the Credo-MTX node and edge files instead

OPTIONS:
    --cpu <engine>     CPU engine: seq-node, seq-edge, par-node (default),
                       par-edge, openmp-node, openmp-edge
    --gpu <engine>     simulated GPU engine: cuda-node (default), cuda-edge,
                       openacc, none
    --stream           stream the MTX pair into shards and run the sharded
                       engine, never materializing the whole graph
    --shards <k>       shard count for --stream (default: 4)
    --spill            with --stream, spill shards to disk and reload one at
                       a time (peak arc memory = largest shard + frontier)
    --out <dir>        output directory (default: target/prof)
    --threads <n>      worker threads for the parallel CPU engines (0 = all)
    --queue            enable the work-queue scheduler
    --seed <n>         seed for synthetic graphs (default: 42)
    --max-iters <n>    iteration cap (default: engine default)
    --quiet            suppress progress output
    -h, --help         print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prof") => match prof(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("-h") | Some("--help") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `credo prof` arguments.
struct ProfArgs {
    graph: String,
    /// Second positional — the edge file of an MTX pair (stream mode).
    edges: String,
    cpu: String,
    gpu: String,
    stream: bool,
    shards: usize,
    spill: bool,
    out: PathBuf,
    threads: usize,
    queue: bool,
    seed: u64,
    max_iters: Option<u32>,
    quiet: bool,
}

fn parse_prof_args(args: &[String]) -> Result<ProfArgs, String> {
    let mut parsed = ProfArgs {
        graph: String::new(),
        edges: String::new(),
        cpu: "par-node".into(),
        gpu: "cuda-node".into(),
        stream: false,
        shards: credo_core::ShardedEngine::DEFAULT_SHARDS,
        spill: false,
        out: PathBuf::from("target/prof"),
        threads: 0,
        queue: false,
        seed: 42,
        max_iters: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--cpu" => parsed.cpu = value("--cpu")?,
            "--gpu" => parsed.gpu = value("--gpu")?,
            "--out" => parsed.out = PathBuf::from(value("--out")?),
            "--threads" => {
                parsed.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--stream" => parsed.stream = true,
            "--shards" => {
                parsed.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if parsed.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--spill" => parsed.spill = true,
            "--queue" => parsed.queue = true,
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--max-iters" => {
                parsed.max_iters = Some(
                    value("--max-iters")?
                        .parse()
                        .map_err(|e| format!("--max-iters: {e}"))?,
                );
            }
            "--quiet" => parsed.quiet = true,
            "-h" | "--help" => return Err(format!("help requested\n\n{USAGE}")),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            positional if parsed.graph.is_empty() => parsed.graph = positional.to_string(),
            positional if parsed.edges.is_empty() => {
                parsed.edges = positional.to_string();
            }
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    if parsed.graph.is_empty() {
        return Err(format!("missing <graph> argument\n\n{USAGE}"));
    }
    if parsed.stream && parsed.edges.is_empty() {
        return Err(format!(
            "--stream needs both <nodes.mtx> and <edges.mtx>\n\n{USAGE}"
        ));
    }
    if !parsed.stream && (parsed.spill || !parsed.edges.is_empty()) {
        return Err("--spill and a second positional require --stream".into());
    }
    Ok(parsed)
}

/// Loads a graph from a synthetic `NxE[xK]` spec or a network file.
fn load_graph(spec: &str, seed: u64) -> Result<BeliefGraph, String> {
    if spec.ends_with(".bif") {
        let file = File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
        return credo::io::bif::read(file).map_err(|e| format!("{spec}: {e}"));
    }
    if spec.ends_with(".xml") || spec.ends_with(".xmlbif") {
        let file = File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
        return credo::io::xmlbif::read(file).map_err(|e| format!("{spec}: {e}"));
    }
    let parts: Vec<&str> = spec.split('x').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!(
            "`{spec}` is neither a .bif/.xml path nor an `NxE[xK]` spec"
        ));
    }
    let nodes: usize = parts[0].parse().map_err(|e| format!("nodes: {e}"))?;
    let edges: usize = parts[1].parse().map_err(|e| format!("edges: {e}"))?;
    let beliefs: usize = match parts.get(2) {
        Some(k) => k.parse().map_err(|e| format!("cardinality: {e}"))?,
        None => 2,
    };
    Ok(synthetic(
        nodes,
        edges,
        &GenOptions::new(beliefs).with_seed(seed),
    ))
}

/// Instantiates an engine by CLI name; `None` when the name is `none`.
fn engine_by_name(name: &str, device: &Device) -> Result<Option<Box<dyn BpEngine>>, String> {
    Ok(Some(match name {
        "seq-node" => Box::new(SeqNodeEngine),
        "seq-edge" => Box::new(SeqEdgeEngine),
        "par-node" => Box::new(ParNodeEngine),
        "par-edge" => Box::new(ParEdgeEngine),
        "openmp-node" => Box::new(OpenMpNodeEngine),
        "openmp-edge" => Box::new(OpenMpEdgeEngine),
        "cuda-node" => Box::new(CudaNodeEngine::new(device.clone())),
        "cuda-edge" => Box::new(CudaEdgeEngine::new(device.clone())),
        "openacc" => Box::new(OpenAccEngine::new(device.clone(), credo::Paradigm::Node)),
        "none" => return Ok(None),
        other => return Err(format!("unknown engine `{other}`")),
    }))
}

/// One line of the per-engine result table.
fn report_line(stats: &BpStats) -> String {
    let secs = stats.reported_time.as_secs_f64();
    let msgs_per_sec = if secs > 0.0 {
        stats.message_updates as f64 / secs
    } else {
        0.0
    };
    format!(
        "{:<12} {:>6} iters  converged={:<5}  {:>12} msgs  {:>10.0} msg/s  {:>10.3} ms",
        stats.engine,
        stats.iterations,
        stats.converged,
        stats.message_updates,
        msgs_per_sec,
        secs * 1e3,
    )
}

/// The `--stream` path: lower the MTX pair into shards (resident or
/// spilled) and run the sharded engine, never building a whole-graph
/// `BeliefGraph`.
fn prof_stream(args: &ProfArgs, say: &dyn Fn(String)) -> Result<(), String> {
    use credo_core::run_sharded;

    let nodes = PathBuf::from(&args.graph);
    let edges = PathBuf::from(&args.edges);
    let mut opts = BpOptions {
        threads: args.threads,
        ..BpOptions::default()
    };
    if let Some(cap) = args.max_iters {
        opts.max_iterations = cap;
    }

    std::fs::create_dir_all(&args.out).map_err(|e| format!("{}: {e}", args.out.display()))?;
    let buffer = Arc::new(TraceBuffer::new());
    let trace = Dispatch::new(buffer.clone());

    let err_ctx = |e: credo::io::IoError| format!("{}: {e}", args.graph);
    let (stats, source_desc) = if args.spill {
        let spill_dir = args.out.join("shards");
        let mut spilled = credo_stream::lower_files_spill(&nodes, &edges, args.shards, &spill_dir)
            .map_err(err_ctx)?;
        let desc = format!(
            "{} spilled shards under {} (largest {} KiB resident)",
            spilled.meta().num_shards(),
            spill_dir.display(),
            spilled.max_shard_bytes() / 1024,
        );
        let (stats, _beliefs) = run_sharded(
            "Stream Node",
            &mut spilled,
            &opts,
            &trace,
            args.threads,
            None,
        )
        .map_err(|e| format!("stream: {e}"))?;
        (stats, desc)
    } else {
        let mut sx = credo_stream::lower_files(&nodes, &edges, args.shards).map_err(err_ctx)?;
        let desc = format!("{} resident shards", sx.meta.num_shards());
        let (stats, _beliefs) =
            run_sharded("Stream Node", &mut sx, &opts, &trace, args.threads, None)
                .map_err(|e| format!("stream: {e}"))?;
        (stats, desc)
    };
    say(format!(
        "streamed {} + {}: {source_desc}",
        args.graph, args.edges
    ));

    let jsonl = args.out.join("prof.jsonl");
    let chrome = args.out.join("prof.trace.json");
    buffer
        .write_json_lines(&jsonl)
        .map_err(|e| format!("{}: {e}", jsonl.display()))?;
    buffer
        .write_chrome_trace(&chrome)
        .map_err(|e| format!("{}: {e}", chrome.display()))?;

    println!("== engines ==");
    println!("{}", report_line(&stats));
    println!();
    print!("{}", buffer.summary().render());
    println!();
    println!("metrics:      {}", jsonl.display());
    println!(
        "chrome trace: {} (load in chrome://tracing or Perfetto)",
        chrome.display()
    );
    Ok(())
}

fn prof(args: &[String]) -> Result<(), String> {
    let args = parse_prof_args(args)?;
    let progress = if args.quiet {
        Dispatch::none()
    } else {
        Dispatch::new(Arc::new(ConsoleRecorder::new()))
    };
    let say = |msg: String| progress.event("progress", &[("msg", msg.as_str().into())]);

    if args.stream {
        return prof_stream(&args, &say);
    }

    let graph = load_graph(&args.graph, args.seed)?;
    say(format!(
        "graph: {} nodes, {} edges, {} beliefs",
        graph.num_nodes(),
        graph.num_edges(),
        graph.metadata().num_beliefs
    ));

    let mut opts = BpOptions {
        threads: args.threads,
        work_queue: args.queue,
        ..BpOptions::default()
    };
    if let Some(cap) = args.max_iters {
        opts.max_iterations = cap;
    }

    let device = Device::new(PASCAL_GTX1070);
    let buffer = Arc::new(TraceBuffer::new());
    let trace = Dispatch::new(buffer.clone());

    let mut reports = Vec::new();
    for (which, name) in [(&args.cpu, "cpu"), (&args.gpu, "gpu")] {
        let Some(engine) = engine_by_name(which, &device)? else {
            continue;
        };
        say(format!("running {name} engine `{which}`"));
        let mut g = graph.clone();
        let stats = engine
            .run_traced(&mut g, &opts, &trace)
            .map_err(|e| format!("{which}: {e}"))?;
        reports.push(report_line(&stats));
    }

    std::fs::create_dir_all(&args.out).map_err(|e| format!("{}: {e}", args.out.display()))?;
    let jsonl = args.out.join("prof.jsonl");
    let chrome = args.out.join("prof.trace.json");
    buffer
        .write_json_lines(&jsonl)
        .map_err(|e| format!("{}: {e}", jsonl.display()))?;
    buffer
        .write_chrome_trace(&chrome)
        .map_err(|e| format!("{}: {e}", chrome.display()))?;

    println!("== engines ==");
    for line in &reports {
        println!("{line}");
    }
    println!();
    print!("{}", buffer.summary().render());
    println!();
    println!("metrics:      {}", jsonl.display());
    println!(
        "chrome trace: {} (load in chrome://tracing or Perfetto)",
        chrome.display()
    );
    Ok(())
}
