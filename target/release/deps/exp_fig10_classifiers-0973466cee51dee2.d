/root/repo/target/release/deps/exp_fig10_classifiers-0973466cee51dee2.d: crates/bench/src/bin/exp_fig10_classifiers.rs

/root/repo/target/release/deps/exp_fig10_classifiers-0973466cee51dee2: crates/bench/src/bin/exp_fig10_classifiers.rs

crates/bench/src/bin/exp_fig10_classifiers.rs:
