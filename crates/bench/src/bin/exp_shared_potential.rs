//! §2.2 — the shared joint-probability-matrix refinement.
//!
//! Paper: replacing per-edge matrices with one shared estimate yields "a 2x
//! speedup on average with both C and the CUDA Edge implementations" and
//! "over 25x speedups for the larger graphs" with CUDA Node (whose many
//! more memory accesses make the constant-memory hit rate matter most).

use credo::engines::{CudaEdgeEngine, CudaNodeEngine, SeqEdgeEngine};
use credo::{BpEngine, BpOptions};
use credo_bench::report::{fmt_speedup, save_json, Table};
use credo_bench::runner::run_clean;
use credo_bench::scale_from_args;
use credo_bench::suite::{GraphKind, TABLE1};
use credo_gpusim::{Device, PASCAL_GTX1070};
use credo_graph::generators::{synthetic, GenOptions, PotentialKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    beliefs: usize,
    c_edge_speedup: f64,
    cuda_edge_speedup: f64,
    cuda_node_speedup: f64,
}

fn time_both(engine_builder: &dyn Fn() -> Box<dyn BpEngine>, n: usize, e: usize, k: usize) -> f64 {
    let opts = credo_bench::apply_max_iters(BpOptions::default());
    let gen_per_edge = GenOptions::new(k)
        .with_seed(42)
        .with_potentials(PotentialKind::PerEdgeRandom);
    let gen_shared = GenOptions::new(k)
        .with_seed(42)
        .with_potentials(PotentialKind::SharedSmoothing(0.2));
    let mut per_edge = synthetic(n, e, &gen_per_edge);
    let mut shared = synthetic(n, e, &gen_shared);
    let slow = run_clean(engine_builder().as_ref(), &mut per_edge, &opts)
        .map(|s| s.reported_time.as_secs_f64());
    let fast = run_clean(engine_builder().as_ref(), &mut shared, &opts)
        .map(|s| s.reported_time.as_secs_f64());
    match (slow, fast) {
        (Ok(s), Ok(f)) if f > 0.0 => s / f,
        _ => f64::NAN, // per-edge matrices exceeded VRAM — itself the point
    }
}

fn main() {
    let scale = scale_from_args();
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("§2.2: per-edge vs shared joint probability matrix (scale: {scale:?})"),
    );
    // "a micro-benchmark composed of a subset of just the graphs ranging
    // from 10x40 to 800kx1200k of the previously used synthetic graphs"
    let subset: Vec<_> = TABLE1
        .iter()
        .filter(|s| s.kind == GraphKind::Synthetic && s.nodes <= 800_000)
        .collect();

    let mut table = Table::new(&["Graph", "beliefs", "C Edge", "CUDA Edge", "CUDA Node"]);
    let mut rows = Vec::new();
    for spec in &subset {
        for k in [2usize, 3] {
            let n = spec.scaled_nodes(scale);
            let e = spec.scaled_edges(scale);
            let c_edge = time_both(&|| Box::new(SeqEdgeEngine), n, e, k);
            let cuda_edge = time_both(
                &|| Box::new(CudaEdgeEngine::new(Device::new(PASCAL_GTX1070))),
                n,
                e,
                k,
            );
            let cuda_node = time_both(
                &|| Box::new(CudaNodeEngine::new(Device::new(PASCAL_GTX1070))),
                n,
                e,
                k,
            );
            table.row(&[
                spec.abbrev.to_string(),
                k.to_string(),
                fmt_speedup(c_edge),
                fmt_speedup(cuda_edge),
                fmt_speedup(cuda_node),
            ]);
            rows.push(Row {
                graph: spec.abbrev.to_string(),
                beliefs: k,
                c_edge_speedup: c_edge,
                cuda_edge_speedup: cuda_edge,
                cuda_node_speedup: cuda_node,
            });
        }
    }
    table.print();
    let mean = |f: &dyn Fn(&Row) -> f64| {
        let v: Vec<f64> = rows.iter().map(f).filter(|x| x.is_finite()).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nMean speedup from the shared matrix: C Edge {}, CUDA Edge {}, CUDA Node {}",
        fmt_speedup(mean(&|r| r.c_edge_speedup)),
        fmt_speedup(mean(&|r| r.cuda_edge_speedup)),
        fmt_speedup(mean(&|r| r.cuda_node_speedup)),
    );
    println!("(paper: ~2x, ~2x, >25x on the larger graphs)");
    if let Ok(p) = save_json("shared_potential", &rows) {
        println!("JSON: {}", p.display());
    }
}
