/root/repo/target/release/deps/exp_aos_soa-0709a39959da0220.d: crates/bench/src/bin/exp_aos_soa.rs

/root/repo/target/release/deps/exp_aos_soa-0709a39959da0220: crates/bench/src/bin/exp_aos_soa.rs

crates/bench/src/bin/exp_aos_soa.rs:
