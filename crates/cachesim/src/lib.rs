//! # credo-cachesim
//!
//! A small cachegrind-like L1 data-cache simulator — the stand-in for the
//! `valgrind --tool=cachegrind` profiling the paper uses in §3.4 to choose
//! the array-of-structs layout ("the AoS approach has circa 56% fewer data
//! cache reads and writes"). The layout experiment feeds address traces
//! from both belief layouts through [`CacheSim`] and compares access and
//! miss counts.

#![warn(missing_docs)]

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// The L1D of the paper's Core i7-7700HQ: 32 KiB, 64-byte lines, 8-way.
    pub fn i7_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }
}

/// Access/miss counters (cachegrind's D-cache section).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Data reads issued.
    pub reads: u64,
    /// Data writes issued.
    pub writes: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
}

impl CacheStats {
    /// Total accesses (cachegrind's `D refs`).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative, write-allocate, LRU data cache.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: resident line tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl CacheSim {
    /// Builds a cache.
    ///
    /// # Panics
    /// Panics unless line size and set count are powers of two and the
    /// geometry is consistent.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(config.associativity >= 1, "need at least one way");
        let sets = config.num_sets();
        assert!(sets >= 1 && sets.is_power_of_two(), "set count must be 2^k");
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.associativity); sets],
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters and contents.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }

    fn touch(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            true
        } else {
            if ways.len() == self.config.associativity {
                ways.pop();
            }
            ways.insert(0, line);
            false
        }
    }

    /// Simulates a read of the byte at `addr`.
    pub fn read(&mut self, addr: u64) {
        self.stats.reads += 1;
        if !self.touch(addr) {
            self.stats.read_misses += 1;
        }
    }

    /// Simulates a write of the byte at `addr`.
    pub fn write(&mut self, addr: u64) {
        self.stats.writes += 1;
        if !self.touch(addr) {
            self.stats.write_misses += 1;
        }
    }

    /// Simulates a read of `bytes` bytes starting at `addr`, issuing one
    /// access per touched line (how a word-at-a-time loop behaves after
    /// load combining).
    pub fn read_range(&mut self, addr: u64, bytes: u64) {
        let mut a = addr & !((self.config.line_bytes - 1) as u64);
        while a < addr + bytes {
            self.read(a);
            a += self.config.line_bytes as u64;
        }
    }

    /// Simulates a write of `bytes` bytes starting at `addr`.
    pub fn write_range(&mut self, addr: u64, bytes: u64) {
        let mut a = addr & !((self.config.line_bytes - 1) as u64);
        while a < addr + bytes {
            self.write(a);
            a += self.config.line_bytes as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 16-byte lines = 128 bytes.
        CacheSim::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            associativity: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::i7_l1d().num_sets(), 64);
        assert_eq!(tiny().config().num_sets(), 4);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        c.read(0x40);
        c.read(0x44); // same line
        let s = c.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.read_misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets × line = 64 bytes).
        c.read(0);
        c.read(64);
        c.read(128); // evicts line 0 (LRU)
        c.read(0); // miss again
        assert_eq!(c.stats().read_misses, 4);
        c.read(128); // still resident (MRU before the re-fetch of 0)
        assert_eq!(c.stats().read_misses, 4);
    }

    #[test]
    fn lru_order_updates_on_hit() {
        let mut c = tiny();
        c.read(0);
        c.read(64);
        c.read(0); // refresh line 0
        c.read(128); // evicts 64, not 0
        c.read(0);
        assert_eq!(c.stats().read_misses, 3);
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheSim::new(CacheConfig::i7_l1d());
        for addr in 0..4096u64 {
            c.read(addr);
        }
        let s = c.stats();
        assert_eq!(s.reads, 4096);
        assert_eq!(s.read_misses, 4096 / 64);
    }

    #[test]
    fn write_allocate() {
        let mut c = tiny();
        c.write(0x10);
        c.read(0x18);
        let s = c.stats();
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.read_misses, 0, "write allocated the line");
    }

    #[test]
    fn range_accesses_touch_each_line_once() {
        let mut c = tiny();
        c.read_range(0, 48); // 3 lines
        assert_eq!(c.stats().reads, 3);
        c.reset();
        c.read_range(8, 16); // straddles two lines
        assert_eq!(c.stats().reads, 2);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.read(0);
        c.read(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.read(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        c.read(0);
        assert_eq!(c.stats().read_misses, 1, "contents were flushed");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 128 B capacity
                            // Two passes over 4 KiB: no reuse survives.
        for _ in 0..2 {
            for i in 0..256u64 {
                c.read(i * 16);
            }
        }
        assert_eq!(c.stats().read_misses, 512);
    }
}
