//! Beyond the paper — what the content-addressed plan store buys a
//! restart.
//!
//! Three cold-vs-store comparisons on the streamed synthetic graph
//! (1M×4M at `--scale full`):
//!
//! * **resident**: `ExecGraph::compile` from the in-memory graph vs
//!   mmap-loading the stored plan ([`credo_store::PlanStore::load_plan`]).
//! * **sharded**: the two-pass MTX lowering (`credo_stream::lower_files`,
//!   i.e. what a cold serve restart pays to rebuild its shards) vs
//!   mmap-loading the stored shard set.
//! * **first-request**: a cold process converging on the full evidence
//!   from priors vs a restarted process (this binary re-exec'd with
//!   `--resume-child`, so the measurement sees a genuinely fresh
//!   allocator and page tables) that mmaps the plan, restores the latest
//!   warm snapshot and answers a one-node evidence change.
//!
//! Every row carries `load_speedup = cold_seconds / store_seconds`, the
//! ratio `bench_gate` gates against `ci/baselines/store.json`. The run
//! itself is a guard: loaded-plan posteriors must be **bitwise equal** to
//! fresh-compiled ones, the resumed first response must agree with the
//! cold one to the run's stopping residual (1e-4 floor), and at
//! `--scale full` the sharded mmap-load must be ≥10× faster than
//! re-lowering with a first response under 1s.

use credo::BpOptions;
use credo_bench::report::{fmt_secs, save_bench_json, save_json, Table};
use credo_bench::suite::Scale;
use credo_bench::{flag_value, scale_from_args};
use credo_core::{run_sharded, Dispatch, EvidenceDelta, WarmPolicy, WarmState};
use credo_graph::generators::{synthetic, GenOptions, PotentialKind};
use credo_graph::ExecGraph;
use credo_store::{structural_hash, PlanStore, SourceKey};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    graph: String,
    /// Which cold-vs-store pair this row measures.
    mode: String,
    nodes: usize,
    edges: usize,
    shards: usize,
    /// Stored plan footprint on disk.
    plan_bytes: u64,
    /// The path a storeless restart pays.
    cold_seconds: f64,
    /// The same outcome through the store.
    store_seconds: f64,
    /// cold / store; higher is better.
    load_speedup: f64,
    /// L∞ posterior distance between the two paths (0 when bitwise).
    max_abs_diff: f64,
}

fn linf(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// The restarted server: open the store, mmap the plan, restore the
/// latest snapshot and answer one changed observation warm. Prints a
/// machine-readable `resume:` line with the store-path wall time and
/// dumps the posteriors (little-endian f32) for the parent's agreement
/// check.
fn resume_child(args: &[String]) {
    let [store_dir, name, seed, flip, threads, threshold, max_iters, out_path] = args else {
        panic!("--resume-child expects 8 positional arguments");
    };
    let seed: u64 = seed.parse().expect("seed");
    let threads: usize = threads.parse().expect("threads");
    let (fv, fs) = flip.split_once(':').expect("flip as node:state");
    let flip: (u32, u32) = (
        fv.parse().expect("flip node"),
        fs.parse().expect("flip state"),
    );
    let opts = BpOptions {
        threshold: threshold.parse().expect("threshold"),
        queue_threshold: threshold.parse().expect("threshold"),
        max_iterations: max_iters.parse().expect("max iterations"),
        ..BpOptions::default()
    };
    let policy = WarmPolicy::default();
    let trace = Dispatch::none();

    let t0 = Instant::now();
    let store = PlanStore::open(store_dir).expect("open store");
    let key = SourceKey::from_spec(name, seed);
    let (plan, m) = store
        .load_plan(&key)
        .expect("load plan")
        .expect("plan stored");
    let t_load = t0.elapsed();
    let mut resumed = WarmState::from_plan(plan, threads);
    let root = m.root_hash().expect("manifest root");
    let snap = store
        .load_warm_latest(root)
        .expect("load snapshot")
        .expect("snapshot stored");
    resumed.restore(&snap).expect("restore snapshot");
    let t_ready = t0.elapsed();
    let run = resumed
        .run_from(
            "store",
            &EvidenceDelta::observing(&[flip]),
            &opts,
            &policy,
            &trace,
        )
        .expect("warm first request");
    let total = t0.elapsed();
    eprintln!(
        "first-request store path: mmap-load {t_load:?}, state restored {t_ready:?}, \
         answered {total:?} ({} warm iterations, frontier {})",
        run.stats.iterations, run.frontier
    );
    println!(
        "resume: seconds={} warm={} iterations={} frontier={}",
        total.as_secs_f64(),
        run.warm,
        run.stats.iterations,
        run.frontier
    );
    let bytes: Vec<u8> = resumed
        .beliefs()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    std::fs::write(out_path, bytes).expect("write resumed beliefs");
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--resume-child") {
        resume_child(&argv[2..]);
        return;
    }
    let scale = scale_from_args();
    let (nodes, edges, shards) = match scale {
        Scale::Quick => (50_000, 200_000, 4),
        Scale::Default => (250_000, 1_000_000, 8),
        Scale::Full => (1_000_000, 4_000_000, 8),
    };
    let threads: usize = flag_value("--threads")
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1);
    let seed: u64 = flag_value("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    // The warm path only engages from a *converged* snapshot, and the
    // global max-residual criterion gets harder with node count: the max
    // over 4M messages plateaus above 1e-4 on the 1M-node graph (measured:
    // still unconverged after 1000 iterations), which would leave the
    // snapshot cold-only. Full scale therefore runs at the paper's own
    // 1e-3 stopping residual — the regime `credo-serve` actually operates
    // in — with a raised iteration cap as insurance, and the cold-vs-warm
    // agreement guard below scales with the stopping residual.
    let mut opts = credo_bench::apply_max_iters(BpOptions {
        threshold: 1e-5,
        queue_threshold: 1e-5,
        ..BpOptions::default()
    });
    if matches!(scale, Scale::Full) {
        opts.threshold = 1e-3;
        opts.queue_threshold = 1e-3;
        if flag_value("--max-iters").is_none() {
            opts.max_iterations = opts.max_iterations.max(1000);
        }
    }
    let agree_tol = f64::max(1e-4, opts.threshold as f64);
    // The bitwise load-vs-compile guards compare fixed iteration counts,
    // not fixed points — identical inputs and schedules give identical
    // bits whether or not BP has converged, so cap them cheaply.
    let probe_opts = BpOptions {
        max_iterations: 40,
        ..opts
    };
    let trace = Dispatch::none();
    let graph_name = format!("synthetic-{}k", nodes / 1000);

    let dir = std::env::temp_dir().join(format!("credo-exp-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store = PlanStore::open(dir.join("store")).expect("open store");

    println!("{graph_name}: generating {nodes} nodes / {edges} edges");
    let g = synthetic(
        nodes,
        edges,
        &GenOptions::new(2)
            .with_seed(seed)
            .with_potentials(PotentialKind::SharedRandom),
    );
    let nodes_mtx = dir.join("g.nodes.mtx");
    let edges_mtx = dir.join("g.edges.mtx");
    credo_io::mtx::write_files(&g, &nodes_mtx, &edges_mtx).expect("write mtx pair");
    let structural = structural_hash(&g);

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;

    // ---- resident: compile vs mmap-load --------------------------------
    let t0 = Instant::now();
    let fresh = ExecGraph::compile(&g);
    let compile_s = t0.elapsed().as_secs_f64();
    let key = SourceKey::from_spec(&graph_name, seed);
    let m = store
        .save_plan(key, &graph_name, structural, &fresh)
        .expect("save resident plan");
    let t0 = Instant::now();
    let (loaded, _) = store
        .load_plan(&key)
        .expect("load resident plan")
        .expect("resident plan stored");
    let load_s = t0.elapsed().as_secs_f64();

    // Bitwise guard: the mmap'd plan must run to the exact same bits.
    let run_bits = |plan: ExecGraph| -> Vec<u32> {
        let mut w = WarmState::from_plan(plan, threads);
        w.run_cold("Plan Node", &probe_opts, &trace, None);
        w.beliefs().iter().map(|v| v.to_bits()).collect()
    };
    if run_bits(loaded) != run_bits(fresh) {
        eprintln!("FAIL: mmap-loaded plan posteriors are not bitwise equal to fresh compile");
        failed = true;
    }
    rows.push(Row {
        graph: graph_name.clone(),
        mode: "resident".into(),
        nodes,
        edges,
        shards: 1,
        plan_bytes: m.bytes,
        cold_seconds: compile_s,
        store_seconds: load_s,
        load_speedup: compile_s / load_s,
        max_abs_diff: 0.0,
    });

    // ---- sharded: two-pass MTX lowering vs mmap-load -------------------
    let t0 = Instant::now();
    let mut lowered = credo_stream::lower_files(&nodes_mtx, &edges_mtx, shards).expect("lower");
    let lower_s = t0.elapsed().as_secs_f64();
    let skey = SourceKey::from_files(&[&nodes_mtx, &edges_mtx])
        .expect("hash mtx pair")
        .with(&format!("shards={shards}"));
    let sm = store
        .save_sharded(skey, &graph_name, structural, &lowered)
        .expect("save sharded plan");
    let t0 = Instant::now();
    let (mut sloaded, _) = store
        .load_sharded(&skey)
        .expect("load sharded plan")
        .expect("sharded plan stored");
    let sload_s = t0.elapsed().as_secs_f64();

    let (_, fresh_beliefs) = run_sharded(
        "Stream Node",
        &mut lowered,
        &probe_opts,
        &trace,
        threads,
        None,
    )
    .expect("run fresh");
    let (_, loaded_beliefs) = run_sharded(
        "Stream Node",
        &mut sloaded,
        &probe_opts,
        &trace,
        threads,
        None,
    )
    .expect("run loaded");
    let fresh_bits: Vec<u32> = fresh_beliefs.iter().map(|v| v.to_bits()).collect();
    let loaded_bits: Vec<u32> = loaded_beliefs.iter().map(|v| v.to_bits()).collect();
    if fresh_bits != loaded_bits {
        eprintln!("FAIL: mmap-loaded shards' posteriors are not bitwise equal to fresh lowering");
        failed = true;
    }
    rows.push(Row {
        graph: graph_name.clone(),
        mode: "sharded".into(),
        nodes,
        edges,
        shards,
        plan_bytes: sm.bytes,
        cold_seconds: lower_s,
        store_seconds: sload_s,
        load_speedup: lower_s / sload_s,
        max_abs_diff: 0.0,
    });
    drop(lowered);
    drop(sloaded);

    // ---- first request: cold converge vs snapshot resume ---------------
    let policy = WarmPolicy::default();
    let base: Vec<(u32, u32)> = (0..nodes as u32 / 200)
        .map(|i| (i * 199 % nodes as u32, u32::from(i % 3 == 0)))
        .collect();

    // Life 1: converge on the base evidence and snapshot to the store.
    let mut first = WarmState::new(g.clone(), threads);
    first
        .run_from(
            "store",
            &EvidenceDelta::observing(&base),
            &opts,
            &policy,
            &trace,
        )
        .expect("base run");
    let root = m.root_hash().expect("manifest root");
    store
        .save_warm(root, "base", &first.snapshot())
        .expect("save snapshot");
    drop(first);

    // Cold restart: rebuild state from priors and answer the changed
    // evidence in one run.
    let mut absolute = base.clone();
    absolute[0] = (base[0].0, 1 - base[0].1);
    let mut cold_state = WarmState::new(g.clone(), threads);
    let t0 = Instant::now();
    cold_state
        .run_from(
            "store",
            &EvidenceDelta::observing(&absolute),
            &opts,
            &policy,
            &trace,
        )
        .expect("cold first request");
    let cold_first_s = t0.elapsed().as_secs_f64();

    // Store restart: a restarted server is a fresh *process*, so rerun
    // this binary as one — the child mmaps the plan, restores the
    // snapshot, answers the flipped evidence warm, and reports the
    // store-path wall time (measured in a process whose allocator and
    // page tables are as cold as a real restart's, not polluted by the
    // benchmark stages above).
    let beliefs_path = dir.join("resumed-beliefs.f32");
    let child = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .arg("--resume-child")
        .arg(store.root())
        .arg(&graph_name)
        .arg(seed.to_string())
        .arg(format!("{}:{}", base[0].0, 1 - base[0].1))
        .arg(threads.to_string())
        .arg(format!("{:e}", opts.threshold))
        .arg(opts.max_iterations.to_string())
        .arg(&beliefs_path)
        .output()
        .expect("spawn resume child");
    eprint!("{}", String::from_utf8_lossy(&child.stderr));
    assert!(child.status.success(), "resume child failed");
    let stdout = String::from_utf8_lossy(&child.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("resume:"))
        .expect("resume line from child");
    let mut warm_first_s = f64::NAN;
    let mut child_warm = false;
    for kv in line.trim_start_matches("resume:").split_whitespace() {
        match kv.split_once('=') {
            Some(("seconds", v)) => warm_first_s = v.parse().expect("child seconds"),
            Some(("warm", v)) => child_warm = v == "true",
            _ => {}
        }
    }
    assert!(warm_first_s.is_finite(), "child reported no timing");
    let raw = std::fs::read(&beliefs_path).expect("read resumed beliefs");
    let resumed_beliefs: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();

    let diff = linf(cold_state.beliefs(), &resumed_beliefs);
    if diff > agree_tol {
        eprintln!(
            "FAIL: resumed first response diverges from cold by {diff:.2e} (> {agree_tol:.0e})"
        );
        failed = true;
    }
    if !child_warm {
        eprintln!("FAIL: restored snapshot fell back to a cold run");
        failed = true;
    }
    rows.push(Row {
        graph: graph_name.clone(),
        mode: "first-request".into(),
        nodes,
        edges,
        shards: 1,
        plan_bytes: m.bytes,
        cold_seconds: cold_first_s,
        store_seconds: warm_first_s,
        load_speedup: cold_first_s / warm_first_s,
        max_abs_diff: diff,
    });

    let mut table = Table::new(&[
        "mode", "shards", "bytes", "cold", "store", "speedup", "L_inf",
    ]);
    for r in &rows {
        table.row(&[
            r.mode.clone(),
            format!("{}", r.shards),
            format!("{}", r.plan_bytes),
            fmt_secs(r.cold_seconds),
            fmt_secs(r.store_seconds),
            format!("{:.1}x", r.load_speedup),
            format!("{:.2e}", r.max_abs_diff),
        ]);
    }
    table.print();
    let json = save_json("store", &rows).expect("write json");
    let bench = save_bench_json("store", &rows).expect("write bench json");
    println!("wrote {} and {}", json.display(), bench.display());

    // Acceptance at the paper's scale: a restart mmaps the shard set an
    // order of magnitude faster than re-lowering, and the first response
    // of a resumed server lands under a second.
    if matches!(scale, Scale::Full) {
        let sharded = &rows[1];
        if sharded.load_speedup < 10.0 {
            eprintln!(
                "FAIL: sharded mmap-load only {:.1}x faster than re-lowering (< 10x)",
                sharded.load_speedup
            );
            failed = true;
        }
        if warm_first_s >= 1.0 {
            eprintln!("FAIL: resumed first response took {warm_first_s:.3}s (>= 1s)");
            failed = true;
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: loaded plans bitwise-equal, resumed first response {} ({:.1}x vs cold {})",
        fmt_secs(warm_first_s),
        cold_first_s / warm_first_s,
        fmt_secs(cold_first_s),
    );
}
