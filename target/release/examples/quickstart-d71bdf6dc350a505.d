/root/repo/target/release/examples/quickstart-d71bdf6dc350a505.d: crates/credo/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d71bdf6dc350a505: crates/credo/../../examples/quickstart.rs

crates/credo/../../examples/quickstart.rs:
