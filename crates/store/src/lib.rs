//! # credo-store
//!
//! Content-addressed persistence for compiled execution plans and
//! warm-start state, built for one number: restart latency. Compiling a
//! million-node plan takes seconds; `mmap`-ing its stored blob back takes
//! microseconds and pages in lazily, so a restarted `credo serve` answers
//! its first query in well under a second.
//!
//! The pieces:
//!
//! * [`Blob`] — the validated, mmap-able container format (fixed header,
//!   section table, 8-aligned payload, whole-file checksum that doubles
//!   as the content address).
//! * [`PlanStore`] — the on-disk store: deduplicated `objects/`,
//!   manifests keyed by content-derived [`SourceKey`]s, warm snapshots
//!   keyed by plan root + evidence fingerprint, plus `gc` (LRU byte
//!   budget) and `verify` (full re-checksum).
//! * [`structural_hash`] / [`merkle_root`] — the hashing scheme that
//!   makes invalidation precise: evidence changes re-key only the small
//!   state blob, single-shard changes reuse every other shard blob.
//! * [`Mapping`] — read-only mmap (raw syscalls, no libc dependency)
//!   with an aligned heap fallback.
//!
//! Every load path validates before it trusts: container checks (magic,
//! version, layout hash, bounds, alignment, checksum) and then the plan
//! types' own semantic validators. A truncated or bit-flipped file is a
//! structured [`StoreError`], never a panic — callers recompile and
//! overwrite.

#![warn(missing_docs)]

mod blob;
mod error;
mod hash;
mod mmap;
mod plan_io;
mod store;

pub use blob::{blob_path, dtype, kind, layout_hash, write_blob, Blob, Section, WrittenBlob};
pub use error::StoreError;
pub use hash::{hex_u128, merkle_root, parse_hex_u128, structural_hash};
pub use mmap::Mapping;
pub use plan_io::{
    load_exec_graph, load_shard, load_sharded_meta, load_warm, save_exec_graph, save_shard,
    save_sharded_meta, save_warm, sec, PlanBlobs,
};
pub use store::{GcReport, PlanManifest, PlanStore, SourceKey, VerifyReport};
