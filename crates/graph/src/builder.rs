//! Incremental construction of [`BeliefGraph`]s.

use crate::beliefs::Belief;
use crate::csr::Csr;
use crate::graph::{Arc, BeliefGraph, GraphError, NodeId};
use crate::potentials::{JointMatrix, PotentialStore};

/// Builds a [`BeliefGraph`] node by node and edge by edge, then freezes it
/// into the indexed form the engines consume.
///
/// Two potential modes are supported and must not be mixed:
///
/// * **Shared** — call [`GraphBuilder::shared_potential`] once, then add
///   edges without matrices ([`GraphBuilder::add_undirected_edge`] /
///   [`GraphBuilder::add_directed_edge`]). This is §2.2's refinement.
/// * **Per-edge** — add every edge with its own matrix
///   ([`GraphBuilder::add_undirected_edge_with`] /
///   [`GraphBuilder::add_directed_edge_with`]). This is the original
///   formulation that BIF networks require.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    names: Vec<String>,
    any_named: bool,
    priors: Vec<Belief>,
    observed: Vec<bool>,
    arcs: Vec<Arc>,
    arc_potentials: Vec<Option<JointMatrix>>,
    shared: Option<JointMatrix>,
    undirected_edges: usize,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with node/edge capacity reserved up front (the streaming
    /// MTX parser knows both counts from the header line).
    pub fn with_capacity(nodes: usize, undirected_edges: usize) -> Self {
        GraphBuilder {
            names: Vec::new(),
            any_named: false,
            priors: Vec::with_capacity(nodes),
            observed: Vec::with_capacity(nodes),
            arcs: Vec::with_capacity(undirected_edges * 2),
            arc_potentials: Vec::new(),
            shared: None,
            undirected_edges: 0,
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.priors.len()
    }

    /// Number of directed arcs added so far.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an anonymous node with the given prior; returns its id.
    pub fn add_node(&mut self, prior: Belief) -> NodeId {
        let id = self.priors.len() as NodeId;
        self.priors.push(prior);
        self.observed.push(false);
        self.names.push(String::new());
        id
    }

    /// Adds a named node (BIF networks carry names).
    pub fn add_named_node(&mut self, name: impl Into<String>, prior: Belief) -> NodeId {
        let id = self.add_node(prior);
        self.names[id as usize] = name.into();
        self.any_named = true;
        id
    }

    /// Declares the single shared joint matrix (§2.2 mode).
    pub fn shared_potential(&mut self, m: JointMatrix) {
        self.shared = Some(m);
    }

    /// Adds a directed arc in shared-potential mode.
    pub fn add_directed_edge(&mut self, src: NodeId, dst: NodeId) {
        self.arcs.push(Arc {
            src,
            dst,
            reverse: false,
        });
        self.arc_potentials.push(None);
        self.undirected_edges += 1;
    }

    /// Adds a directed arc with its own matrix (per-edge mode).
    pub fn add_directed_edge_with(&mut self, src: NodeId, dst: NodeId, m: JointMatrix) {
        self.arcs.push(Arc {
            src,
            dst,
            reverse: false,
        });
        self.arc_potentials.push(Some(m));
        self.undirected_edges += 1;
    }

    /// Adds an undirected edge in shared-potential mode: forward arc
    /// `src → dst` plus reverse arc `dst → src` (which will use the shared
    /// matrix's transpose).
    pub fn add_undirected_edge(&mut self, src: NodeId, dst: NodeId) {
        self.arcs.push(Arc {
            src,
            dst,
            reverse: false,
        });
        self.arc_potentials.push(None);
        self.arcs.push(Arc {
            src: dst,
            dst: src,
            reverse: true,
        });
        self.arc_potentials.push(None);
        self.undirected_edges += 1;
    }

    /// Adds an undirected edge with its own matrix; the reverse arc gets the
    /// transpose.
    pub fn add_undirected_edge_with(&mut self, src: NodeId, dst: NodeId, m: JointMatrix) {
        let t = m.transposed();
        self.arcs.push(Arc {
            src,
            dst,
            reverse: false,
        });
        self.arc_potentials.push(Some(m));
        self.arcs.push(Arc {
            src: dst,
            dst: src,
            reverse: true,
        });
        self.arc_potentials.push(Some(t));
        self.undirected_edges += 1;
    }

    /// Marks `node` as observed in `state` (applied at build time).
    pub fn observe(&mut self, node: NodeId, state: usize) {
        let len = self.priors[node as usize].len();
        self.priors[node as usize] = Belief::observed(len, state);
        self.observed[node as usize] = true;
    }

    /// Freezes the builder into an indexed [`BeliefGraph`], validating
    /// structure and potential shapes.
    pub fn build(self) -> Result<BeliefGraph, GraphError> {
        let n = self.priors.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }

        let any_per_edge = self.arc_potentials.iter().any(Option::is_some);
        if self.shared.is_some() && any_per_edge {
            return Err(GraphError::ConflictingPotentialModes);
        }

        for arc in &self.arcs {
            for node in [arc.src, arc.dst] {
                if node as usize >= n {
                    return Err(GraphError::InvalidNode { node, num_nodes: n });
                }
            }
        }

        let potentials = if let Some(shared) = self.shared {
            // Shared mode needs one cardinality everywhere.
            let first = self.priors[0].len();
            if let Some(other) = self.priors.iter().find(|b| b.len() != first) {
                return Err(GraphError::MixedCardinality {
                    first,
                    other: other.len(),
                });
            }
            PotentialStore::shared(shared)
        } else {
            let mut ms = Vec::with_capacity(self.arc_potentials.len());
            for (i, slot) in self.arc_potentials.into_iter().enumerate() {
                match slot {
                    Some(m) => ms.push(m),
                    None => return Err(GraphError::MissingPotential { arc: i as u32 }),
                }
            }
            PotentialStore::per_edge(ms)
        };

        let arcs = self.arcs;
        let in_csr = Csr::from_incidence(n, arcs.len(), |a| arcs[a].dst);
        let out_csr = Csr::from_incidence(n, arcs.len(), |a| arcs[a].src);

        let graph = BeliefGraph {
            names: self.any_named.then_some(self.names),
            beliefs: self.priors.clone(),
            priors: self.priors,
            observed: self.observed,
            arcs,
            potentials,
            in_csr,
            out_csr,
            undirected_edges: self.undirected_edges,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn invalid_node_is_rejected() {
        let mut b = GraphBuilder::new();
        b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.1));
        b.add_undirected_edge(0, 5);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::InvalidNode { node: 5, .. }
        ));
    }

    #[test]
    fn missing_potential_is_rejected() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(2));
        b.add_undirected_edge(n0, n1); // no shared potential declared
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::MissingPotential { arc: 0 }
        ));
    }

    #[test]
    fn conflicting_modes_are_rejected() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.1));
        b.add_undirected_edge_with(n0, n1, JointMatrix::smoothing(2, 0.1));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::ConflictingPotentialModes
        );
    }

    #[test]
    fn mixed_cardinality_rejected_in_shared_mode() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(3));
        b.shared_potential(JointMatrix::smoothing(2, 0.1));
        b.add_undirected_edge(n0, n1);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::MixedCardinality { first: 2, other: 3 }
        ));
    }

    #[test]
    fn wrong_potential_shape_rejected() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(2));
        b.add_directed_edge_with(n0, n1, JointMatrix::uniform(3, 3));
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::PotentialShape { arc: 0, .. }
        ));
    }

    #[test]
    fn observe_at_build_time() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.1));
        b.add_undirected_edge(n0, n1);
        b.observe(n0, 1);
        let g = b.build().unwrap();
        assert!(g.observed()[0]);
        assert_eq!(g.beliefs()[0].as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn named_nodes_resolve() {
        let mut b = GraphBuilder::new();
        b.add_named_node("family-out", Belief::from_slice(&[0.15, 0.85]));
        b.add_named_node("dog-out", Belief::uniform(2));
        b.add_directed_edge_with(0, 1, JointMatrix::uniform(2, 2));
        let g = b.build().unwrap();
        assert_eq!(g.node_by_name("dog-out"), Some(1));
        assert_eq!(g.name(0), Some("family-out"));
        assert_eq!(g.node_by_name("nope"), None);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = GraphBuilder::new();
        let mut b = GraphBuilder::with_capacity(2, 1);
        for builder in [&mut a, &mut b] {
            let n0 = builder.add_node(Belief::uniform(2));
            let n1 = builder.add_node(Belief::uniform(2));
            builder.shared_potential(JointMatrix::smoothing(2, 0.2));
            builder.add_undirected_edge(n0, n1);
        }
        let ga = a.build().unwrap();
        let gb = b.build().unwrap();
        assert_eq!(ga.num_arcs(), gb.num_arcs());
        assert_eq!(ga.num_edges(), gb.num_edges());
    }
}
