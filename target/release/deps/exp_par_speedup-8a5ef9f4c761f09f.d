/root/repo/target/release/deps/exp_par_speedup-8a5ef9f4c761f09f.d: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

/root/repo/target/release/deps/libexp_par_speedup-8a5ef9f4c761f09f.rmeta: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

crates/bench/src/bin/exp_par_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
