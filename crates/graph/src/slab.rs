//! [`Slab`]: plan arrays that are either owned or zero-copy views into a
//! shared byte buffer (an mmap'd blob file, in practice).
//!
//! The compiled plans ([`crate::ExecGraph`], [`crate::ExecShard`]) hold a
//! handful of large immutable arrays. Compiling builds them as `Vec`s;
//! loading from the `credo-store` blob cache wants to point them straight
//! into the mapped file instead of copying hundreds of megabytes. `Slab<T>`
//! abstracts over the two: it derefs to `&[T]` either way, so every engine
//! and accessor is oblivious to where the bytes live.
//!
//! A view keeps its backing buffer alive through an `Arc<dyn PlanBytes>`;
//! the store's mmap wrapper implements [`PlanBytes`]. Views are validated
//! at construction (bounds + alignment), never at access time.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer that can back [`Slab`] views — typically a
/// memory-mapped file. Implementations must return the same bytes at the
/// same address for the lifetime of the value.
pub trait PlanBytes: Send + Sync + 'static {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

impl PlanBytes for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

/// Marker for element types a [`Slab`] may view from raw bytes: plain-old
/// data with no padding and no invalid bit patterns.
///
/// # Safety
/// Implementors guarantee every bit pattern of `size_of::<Self>()` bytes
/// is a valid `Self` and that the type has no interior mutability or drop
/// glue (enforced structurally by `Copy`).
pub unsafe trait SlabItem: Copy + Send + Sync + 'static {}

unsafe impl SlabItem for u8 {}
unsafe impl SlabItem for u16 {}
unsafe impl SlabItem for u32 {}
unsafe impl SlabItem for u64 {}
unsafe impl SlabItem for f32 {}
unsafe impl SlabItem for f64 {}

enum Repr<T: SlabItem> {
    Owned(Vec<T>),
    View {
        owner: Arc<dyn PlanBytes>,
        off: usize,
        len: usize,
        _marker: PhantomData<T>,
    },
}

/// An immutable array that is either owned (`Vec<T>`) or a zero-copy view
/// into a shared [`PlanBytes`] buffer. Derefs to `&[T]`.
pub struct Slab<T: SlabItem>(Repr<T>);

impl<T: SlabItem> Slab<T> {
    /// An empty owned slab.
    pub fn empty() -> Self {
        Slab(Repr::Owned(Vec::new()))
    }

    /// A zero-copy view of `len` elements starting `off` bytes into
    /// `owner`'s buffer. Fails (with a description) when the range is out
    /// of bounds or the start address is misaligned for `T`.
    pub fn view(owner: Arc<dyn PlanBytes>, off: usize, len: usize) -> Result<Self, String> {
        let bytes = owner.bytes();
        let need = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| "slab view length overflows".to_string())?;
        let end = off
            .checked_add(need)
            .ok_or_else(|| "slab view range overflows".to_string())?;
        if end > bytes.len() {
            return Err(format!(
                "slab view {off}..{end} exceeds buffer of {} bytes",
                bytes.len()
            ));
        }
        let addr = bytes.as_ptr() as usize + off;
        if !addr.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(format!(
                "slab view at byte {off} is misaligned for {}-byte alignment",
                std::mem::align_of::<T>()
            ));
        }
        Ok(Slab(Repr::View {
            owner,
            off,
            len,
            _marker: PhantomData,
        }))
    }

    /// True when this slab borrows a shared buffer instead of owning its
    /// elements.
    pub fn is_view(&self) -> bool {
        matches!(self.0, Repr::View { .. })
    }

    /// Copies the elements into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::View {
                owner, off, len, ..
            } => {
                let bytes = owner.bytes();
                // Bounds and alignment were validated in `view`; the owner
                // contract pins the buffer for its lifetime.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(*off) as *const T, *len) }
            }
        }
    }
}

/// Reinterprets a POD slice as its raw little-endian bytes (on the
/// little-endian targets this project supports; blob writers assert this).
pub fn slab_bytes<T: SlabItem>(s: &[T]) -> &[u8] {
    // Sound: SlabItem guarantees no padding or invalid patterns.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

impl<T: SlabItem> Deref for Slab<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: SlabItem> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Slab(Repr::Owned(v))
    }
}

impl<T: SlabItem> Clone for Slab<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Owned(v) => Slab(Repr::Owned(v.clone())),
            Repr::View {
                owner, off, len, ..
            } => Slab(Repr::View {
                owner: Arc::clone(owner),
                off: *off,
                len: *len,
                _marker: PhantomData,
            }),
        }
    }
}

impl<T: SlabItem + fmt::Debug> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: SlabItem + PartialEq> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: SlabItem + PartialEq> PartialEq<[T]> for Slab<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: SlabItem + PartialEq> PartialEq<&[T]> for Slab<T> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: SlabItem + PartialEq> PartialEq<Vec<T>> for Slab<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_slab_derefs_to_its_elements() {
        let s: Slab<u32> = vec![1u32, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(!s.is_view());
        assert_eq!(s, vec![1u32, 2, 3]);
    }

    #[test]
    fn view_reads_little_endian_elements_in_place() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&[0u8; 4]); // padding to offset 4
        for v in [7u32, 8, 9] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let owner: Arc<dyn PlanBytes> = Arc::new(buf);
        let s: Slab<u32> = Slab::view(Arc::clone(&owner), 4, 3).unwrap();
        assert!(s.is_view());
        assert_eq!(&s[..], &[7, 8, 9]);
        assert_eq!(s.clone(), s);
    }

    #[test]
    fn view_rejects_out_of_bounds_and_misalignment() {
        let owner: Arc<dyn PlanBytes> = Arc::new(vec![0u8; 16]);
        assert!(Slab::<u32>::view(Arc::clone(&owner), 0, 5).is_err());
        assert!(Slab::<u32>::view(Arc::clone(&owner), 13, 1).is_err());
        assert!(Slab::<u64>::view(Arc::clone(&owner), usize::MAX, 1).is_err());
        // Alignment depends on the allocation's base address; offset 1 is
        // misaligned for u32 whenever the base is 4-aligned.
        let base = owner.bytes().as_ptr() as usize;
        if base.is_multiple_of(4) {
            assert!(Slab::<u32>::view(owner, 1, 2).is_err());
        }
    }

    #[test]
    fn slab_bytes_roundtrips() {
        let v = [1u32, 0xdead_beef];
        let b = slab_bytes(&v);
        assert_eq!(b.len(), 8);
        assert_eq!(&b[..4], &1u32.to_le_bytes());
    }
}
