/root/repo/target/debug/deps/rayon-11eddd81198f85da.d: crates/compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-11eddd81198f85da.rlib: crates/compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-11eddd81198f85da.rmeta: crates/compat/rayon/src/lib.rs

crates/compat/rayon/src/lib.rs:
