/root/repo/target/release/deps/credo_bench-e3bc5191bccffa25.d: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs Cargo.toml

/root/repo/target/release/deps/libcredo_bench-e3bc5191bccffa25.rmeta: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/dataset.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/suite.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
