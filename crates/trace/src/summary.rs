//! Human-readable aggregation of a trace buffer (the `credo prof`
//! report).

use crate::buffer::Record;

/// Aggregate statistics for one span name on one track.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSummary {
    /// Timeline the spans were recorded on.
    pub track: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total duration across all spans (µs).
    pub total_us: f64,
    /// Shortest span (µs).
    pub min_us: f64,
    /// Longest span (µs).
    pub max_us: f64,
}

impl SpanSummary {
    /// Mean span duration (µs).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// Aggregated view of a trace: span totals per track, counter ranges and
/// event counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// One row per (track, span name), in first-appearance order.
    pub spans: Vec<SpanSummary>,
    /// `(name, samples, last, max)` per counter, in first-appearance
    /// order.
    pub counters: Vec<(&'static str, u64, f64, f64)>,
    /// `(name, count)` per event name, in first-appearance order.
    pub events: Vec<(&'static str, u64)>,
}

impl Summary {
    /// Builds a summary from buffered records.
    pub fn from_records(records: &[Record]) -> Self {
        let mut summary = Summary::default();
        for record in records {
            match record {
                Record::Span {
                    name,
                    track,
                    dur_us,
                    ..
                } => {
                    if let Some(row) = summary
                        .spans
                        .iter_mut()
                        .find(|s| s.name == *name && s.track == *track)
                    {
                        row.count += 1;
                        row.total_us += dur_us;
                        row.min_us = row.min_us.min(*dur_us);
                        row.max_us = row.max_us.max(*dur_us);
                    } else {
                        summary.spans.push(SpanSummary {
                            track,
                            name,
                            count: 1,
                            total_us: *dur_us,
                            min_us: *dur_us,
                            max_us: *dur_us,
                        });
                    }
                }
                Record::Counter { name, value, .. } => {
                    if let Some(row) = summary.counters.iter_mut().find(|(n, ..)| n == name) {
                        row.1 += 1;
                        row.2 = *value;
                        row.3 = row.3.max(*value);
                    } else {
                        summary.counters.push((name, 1, *value, *value));
                    }
                }
                Record::Event { name, .. } => {
                    if let Some(row) = summary.events.iter_mut().find(|(n, _)| n == name) {
                        row.1 += 1;
                    } else {
                        summary.events.push((name, 1));
                    }
                }
            }
        }
        summary
    }

    /// Renders the summary as aligned text, nvprof-style: span rows with
    /// count/total/mean/min/max, then counters and event counts.
    pub fn render(&self) -> String {
        fn fmt_us(us: f64) -> String {
            if us >= 1e6 {
                format!("{:.3}s", us / 1e6)
            } else if us >= 1e3 {
                format!("{:.3}ms", us / 1e3)
            } else {
                format!("{us:.1}us")
            }
        }

        let mut out = String::new();
        if !self.spans.is_empty() {
            let header = [
                "track".to_string(),
                "span".to_string(),
                "count".to_string(),
                "total".to_string(),
                "mean".to_string(),
                "min".to_string(),
                "max".to_string(),
            ];
            let mut rows: Vec<[String; 7]> = vec![header];
            for s in &self.spans {
                rows.push([
                    s.track.to_string(),
                    s.name.to_string(),
                    s.count.to_string(),
                    fmt_us(s.total_us),
                    fmt_us(s.mean_us()),
                    fmt_us(s.min_us),
                    fmt_us(s.max_us),
                ]);
            }
            let mut widths = [0usize; 7];
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            for row in &rows {
                let line: Vec<String> = row
                    .iter()
                    .zip(widths.iter())
                    .map(|(cell, w)| format!("{cell:>w$}", w = w))
                    .collect();
                out.push_str(&line.join("  "));
                out.push('\n');
            }
        }
        if !self.counters.is_empty() {
            out.push('\n');
            out.push_str("counters (samples, last, max):\n");
            for (name, samples, last, max) in &self.counters {
                out.push_str(&format!(
                    "  {name}: {samples} samples, last {last}, max {max}\n"
                ));
            }
        }
        if !self.events.is_empty() {
            out.push('\n');
            out.push_str("events:\n");
            for (name, count) in &self.events {
                out.push_str(&format!("  {name}: {count}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::TraceBuffer;
    use std::sync::Arc;
    use tracing::Dispatch;

    #[test]
    fn aggregates_spans_counters_events() {
        let buffer = Arc::new(TraceBuffer::new());
        let trace = Dispatch::new(buffer.clone());
        trace.timed_span("gpu", "kernel", 0.0, 100.0, &[]);
        trace.timed_span("gpu", "kernel", 100.0, 300.0, &[]);
        trace.counter("queue_depth", 10.0);
        trace.counter("queue_depth", 4.0);
        trace.event("progress", &[]);

        let summary = buffer.summary();
        assert_eq!(summary.spans.len(), 1);
        let s = &summary.spans[0];
        assert_eq!((s.count, s.total_us), (2, 300.0));
        assert_eq!(s.mean_us(), 150.0);
        assert_eq!((s.min_us, s.max_us), (100.0, 200.0));
        assert_eq!(summary.counters, vec![("queue_depth", 2, 4.0, 10.0)]);
        assert_eq!(summary.events, vec![("progress", 1)]);
        let text = summary.render();
        assert!(text.contains("kernel"));
        assert!(text.contains("queue_depth"));
    }
}
