//! The BP mathematics shared by every loopy engine (Algorithm 1, lines
//! 6–11), plus the packed-array microkernels ([`kernels`]) the compiled
//! execution plan runs on.

pub mod kernels;

use credo_graph::{Belief, BeliefGraph, NodeId};

/// Combines a node's prior with a sequence of incoming messages and
/// marginalizes — `combine_updates` + `marginalize` of Algorithm 1.
///
/// Messages are max-scaled by [`credo_graph::JointMatrix::message`], and the
/// running product is re-scaled every few factors so hub nodes with
/// thousands of parents cannot underflow `f32`.
#[inline]
pub fn combine_incoming<'a>(prior: &Belief, messages: impl Iterator<Item = Belief> + 'a) -> Belief {
    let mut acc = *prior;
    for (i, m) in messages.enumerate() {
        acc.mul_assign(&m);
        if i % 8 == 7 {
            acc.scale_max_to_one();
        }
    }
    acc.normalize();
    acc
}

/// Computes node `v`'s new belief from the previous-iteration beliefs
/// `prev` (Jacobi / synchronous update): prior × the product of one message
/// per incoming arc. Returns the new belief and the number of messages
/// computed.
#[inline]
pub fn node_update(graph: &BeliefGraph, v: NodeId, prev: &[Belief]) -> (Belief, u64) {
    let in_arcs = graph.in_arcs(v);
    let prior = &graph.priors()[v as usize];
    let new = combine_incoming(
        prior,
        in_arcs.iter().map(|&a| {
            let src = graph.arc(a).src as usize;
            graph.potential(a).message(&prev[src])
        }),
    );
    (new, in_arcs.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::{GraphBuilder, JointMatrix};

    #[test]
    fn combine_with_no_messages_returns_normalized_prior() {
        let prior = Belief::from_slice(&[2.0, 2.0]);
        let out = combine_incoming(&prior, std::iter::empty());
        assert_eq!(out.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn combine_is_a_normalized_product() {
        let prior = Belief::from_slice(&[0.5, 0.5]);
        let msgs = vec![
            Belief::from_slice(&[0.9, 0.1]),
            Belief::from_slice(&[0.8, 0.2]),
        ];
        let out = combine_incoming(&prior, msgs.into_iter());
        // product: [0.36, 0.01] -> normalized
        let z = 0.36 + 0.01;
        assert!((out.get(0) - 0.36 / z).abs() < 1e-5);
        assert!((out.get(1) - 0.01 / z).abs() < 1e-5);
    }

    #[test]
    fn long_products_do_not_underflow() {
        let prior = Belief::uniform(2);
        // 10_000 identical biased messages would underflow f32 without the
        // periodic rescale; the result must remain a valid distribution.
        let msgs = (0..10_000).map(|_| Belief::from_slice(&[0.6, 0.4]));
        let out = combine_incoming(&prior, msgs);
        assert!(out.is_valid());
        assert!(out.is_normalized(1e-4));
        assert!(out.get(0) > 0.99, "heavily biased evidence should dominate");
    }

    #[test]
    fn node_update_counts_messages() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::from_slice(&[0.9, 0.1]));
        let n1 = b.add_node(Belief::from_slice(&[0.1, 0.9]));
        let n2 = b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.2));
        b.add_undirected_edge(n0, n2);
        b.add_undirected_edge(n1, n2);
        let g = b.build().unwrap();

        let prev = g.beliefs().to_vec();
        let (new, msgs) = node_update(&g, n2, &prev);
        assert_eq!(msgs, 2);
        assert!(new.is_normalized(1e-5));
        // Conflicting neighbours with symmetric strength: stays near uniform.
        assert!((new.get(0) - 0.5).abs() < 0.05);
    }
}
