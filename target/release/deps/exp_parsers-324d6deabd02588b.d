/root/repo/target/release/deps/exp_parsers-324d6deabd02588b.d: crates/bench/src/bin/exp_parsers.rs

/root/repo/target/release/deps/exp_parsers-324d6deabd02588b: crates/bench/src/bin/exp_parsers.rs

crates/bench/src/bin/exp_parsers.rs:
