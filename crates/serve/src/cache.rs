//! LRU posterior cache keyed by canonicalized evidence.
//!
//! Values are `Arc`s of the full packed posterior array, so a hit shares
//! the exact bytes the original computation produced — responses served
//! from cache are bitwise identical to the run that populated the entry
//! (load-bearing for the batched-vs-sequential equality test). Only
//! **converged** results are inserted; a non-converged posterior is a
//! budget artifact, not an answer worth replaying.

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded map from evidence key to packed posteriors with
/// least-recently-used eviction.
#[derive(Debug)]
pub struct PosteriorCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, (Arc<Vec<f32>>, u64)>,
}

impl PosteriorCache {
    /// A cache holding at most `capacity` posterior arrays (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        PosteriorCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<Vec<f32>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(value, used)| {
            *used = tick;
            Arc::clone(value)
        })
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn put(&mut self, key: String, value: Arc<Vec<f32>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (value, self.tick));
    }

    /// Drops every entry (evidence semantics changed, e.g. graph swap).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(v: f32) -> Arc<Vec<f32>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let mut c = PosteriorCache::new(4);
        let v = arc(0.5);
        c.put("a".into(), Arc::clone(&v));
        let got = c.get("a").unwrap();
        assert!(Arc::ptr_eq(&got, &v), "hit must share the stored Arc");
        assert!(c.get("b").is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PosteriorCache::new(2);
        c.put("a".into(), arc(1.0));
        c.put("b".into(), arc(2.0));
        c.get("a"); // refresh a; b is now LRU
        c.put("c".into(), arc(3.0));
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none(), "b was LRU and must be evicted");
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = PosteriorCache::new(2);
        c.put("a".into(), arc(1.0));
        c.put("b".into(), arc(2.0));
        c.put("a".into(), arc(9.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap()[0], 9.0);
        assert!(c.get("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PosteriorCache::new(0);
        c.put("a".into(), arc(1.0));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }
}
