/root/repo/target/release/deps/exp_fig10_classifiers-86ef39bb48427595.d: crates/bench/src/bin/exp_fig10_classifiers.rs Cargo.toml

/root/repo/target/release/deps/libexp_fig10_classifiers-86ef39bb48427595.rmeta: crates/bench/src/bin/exp_fig10_classifiers.rs Cargo.toml

crates/bench/src/bin/exp_fig10_classifiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
