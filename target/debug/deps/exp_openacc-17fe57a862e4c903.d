/root/repo/target/debug/deps/exp_openacc-17fe57a862e4c903.d: crates/bench/src/bin/exp_openacc.rs

/root/repo/target/debug/deps/exp_openacc-17fe57a862e4c903: crates/bench/src/bin/exp_openacc.rs

crates/bench/src/bin/exp_openacc.rs:
