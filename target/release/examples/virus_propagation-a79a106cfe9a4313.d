/root/repo/target/release/examples/virus_propagation-a79a106cfe9a4313.d: crates/credo/../../examples/virus_propagation.rs

/root/repo/target/release/examples/virus_propagation-a79a106cfe9a4313: crates/credo/../../examples/virus_propagation.rs

crates/credo/../../examples/virus_propagation.rs:
