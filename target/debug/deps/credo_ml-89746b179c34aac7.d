/root/repo/target/debug/deps/credo_ml-89746b179c34aac7.d: crates/ml/src/lib.rs crates/ml/src/dataset.rs crates/ml/src/forest.rs crates/ml/src/gboost.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/credo_ml-89746b179c34aac7: crates/ml/src/lib.rs crates/ml/src/dataset.rs crates/ml/src/forest.rs crates/ml/src/gboost.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/dataset.rs:
crates/ml/src/forest.rs:
crates/ml/src/gboost.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/mlp.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:
crates/ml/src/tree.rs:
