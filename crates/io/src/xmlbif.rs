//! The XML-BIF format (§3.2's "XML-based sibling" of BIF), including the
//! minimal XML parser it "requires". Like the reference implementations,
//! the document is fully materialized before extraction — the overhead the
//! Credo MTX format removes.

use crate::bif::build_network;
use crate::error::IoError;
use credo_graph::BeliefGraph;
use std::io::{Read, Write};

const FORMAT: &str = "XML-BIF";

// ----------------------------------------------------------- mini XML ---

/// A parsed XML element: name, children, concatenated text.
#[derive(Clone, Debug, Default)]
struct Element {
    name: String,
    children: Vec<Element>,
    text: String,
}

impl Element {
    fn find(&self, name: &str) -> Option<&Element> {
        self.children
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children
            .iter()
            .filter(move |c| c.name.eq_ignore_ascii_case(name))
    }

    fn text_of(&self, name: &str) -> Option<&str> {
        self.find(name).map(|e| e.text.trim())
    }
}

/// Parses a minimal XML subset: elements, attributes (skipped), text,
/// comments, processing instructions. No entities beyond `&lt; &gt; &amp;`.
fn parse_xml(src: &str) -> Result<Element, IoError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut stack: Vec<Element> = vec![Element {
        name: "<root>".into(),
        ..Default::default()
    }];

    let err = |line: usize, msg: &str| IoError::parse(FORMAT, line, msg.to_string());

    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if src[pos..].starts_with("<!--") {
                match src[pos..].find("-->") {
                    Some(end) => {
                        line += src[pos..pos + end].matches('\n').count();
                        pos += end + 3;
                    }
                    None => return Err(err(line, "unterminated comment")),
                }
            } else if src[pos..].starts_with("<?") {
                match src[pos..].find("?>") {
                    Some(end) => pos += end + 2,
                    None => return Err(err(line, "unterminated processing instruction")),
                }
            } else if src[pos..].starts_with("<!") {
                // DOCTYPE etc.
                match src[pos..].find('>') {
                    Some(end) => pos += end + 1,
                    None => return Err(err(line, "unterminated declaration")),
                }
            } else if src[pos..].starts_with("</") {
                let end = src[pos..]
                    .find('>')
                    .ok_or_else(|| err(line, "unterminated close tag"))?;
                let name = src[pos + 2..pos + end].trim();
                pos += end + 1;
                let done = stack.pop().ok_or_else(|| err(line, "extra close tag"))?;
                if !done.name.eq_ignore_ascii_case(name) {
                    return Err(IoError::parse(
                        FORMAT,
                        line,
                        format!("mismatched close tag: <{}> vs </{}>", done.name, name),
                    ));
                }
                stack
                    .last_mut()
                    .ok_or_else(|| err(line, "close tag at top level"))?
                    .children
                    .push(done);
            } else {
                let end = src[pos..]
                    .find('>')
                    .ok_or_else(|| err(line, "unterminated open tag"))?;
                let inner = &src[pos + 1..pos + end];
                let self_closing = inner.ends_with('/');
                let inner = inner.trim_end_matches('/');
                let name = inner
                    .split_ascii_whitespace()
                    .next()
                    .ok_or_else(|| err(line, "empty tag"))?
                    .to_string();
                pos += end + 1;
                let elem = Element {
                    name,
                    ..Default::default()
                };
                if self_closing {
                    stack
                        .last_mut()
                        .ok_or_else(|| err(line, "tag at top level"))?
                        .children
                        .push(elem);
                } else {
                    stack.push(elem);
                }
            }
        } else {
            let next = src[pos..].find('<').map(|i| pos + i).unwrap_or(bytes.len());
            let chunk = &src[pos..next];
            line += chunk.matches('\n').count();
            let top = stack
                .last_mut()
                .ok_or_else(|| err(line, "text at top level"))?;
            let decoded = chunk
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&amp;", "&");
            top.text.push_str(&decoded);
            pos = next;
        }
    }
    let mut root = stack.pop().ok_or_else(|| err(line, "empty document"))?;
    if !stack.is_empty() {
        return Err(IoError::parse(
            FORMAT,
            line,
            format!("unclosed element <{}>", root.name),
        ));
    }
    if root.children.len() == 1 {
        root = root.children.pop().expect("length checked");
    }
    Ok(root)
}

// ------------------------------------------------------------- reading --

/// Parses an XML-BIF document from a reader (fully materialized first).
pub fn read<R: Read>(mut r: R) -> Result<BeliefGraph, IoError> {
    let mut src = String::new();
    r.read_to_string(&mut src)?;
    read_str(&src)
}

/// Parses an XML-BIF document from a string.
pub fn read_str(src: &str) -> Result<BeliefGraph, IoError> {
    let root = parse_xml(src)?;
    let network = if root.name.eq_ignore_ascii_case("BIF") {
        root.find("NETWORK")
            .ok_or_else(|| IoError::parse(FORMAT, 0, "missing <NETWORK>"))?
    } else if root.name.eq_ignore_ascii_case("NETWORK") {
        &root
    } else {
        return Err(IoError::parse(
            FORMAT,
            0,
            format!("expected <BIF> or <NETWORK> root, got <{}>", root.name),
        ));
    };

    let mut variables: Vec<(String, usize)> = Vec::new();
    for var in network.find_all("VARIABLE") {
        let name = var
            .text_of("NAME")
            .ok_or_else(|| IoError::parse(FORMAT, 0, "variable without <NAME>"))?
            .to_string();
        let outcomes = var.find_all("OUTCOME").count();
        if outcomes == 0 {
            return Err(IoError::parse(
                FORMAT,
                0,
                format!("variable '{name}' has no outcomes"),
            ));
        }
        variables.push((name, outcomes));
    }

    let mut cpts: Vec<(String, Vec<String>, Vec<f32>)> = Vec::new();
    for def in network.find_all("DEFINITION") {
        let child = def
            .text_of("FOR")
            .ok_or_else(|| IoError::parse(FORMAT, 0, "definition without <FOR>"))?
            .to_string();
        let parents: Vec<String> = def
            .find_all("GIVEN")
            .map(|g| g.text.trim().to_string())
            .collect();
        let table_text = def
            .text_of("TABLE")
            .ok_or_else(|| IoError::parse(FORMAT, 0, "definition without <TABLE>"))?;
        let table: Result<Vec<f32>, _> = table_text
            .split_ascii_whitespace()
            .map(str::parse)
            .collect();
        let table = table
            .map_err(|_| IoError::parse(FORMAT, 0, format!("bad table value for '{child}'")))?;
        cpts.push((child, parents, table));
    }

    build_network(variables, cpts, FORMAT)
}

// ------------------------------------------------------------- writing --

/// Serializes a graph as XML-BIF (same CPT composition as the BIF writer).
pub fn write<W: Write>(graph: &BeliefGraph, mut w: W) -> Result<(), IoError> {
    // Reuse the BIF writer's CPT math by generating through a small local
    // duplicate would be worse; instead compose here directly.
    let name_of = |v: u32| -> String {
        graph
            .name(v)
            .map(str::to_string)
            .unwrap_or_else(|| format!("n{v}"))
    };
    writeln!(w, "<?xml version=\"1.0\"?>")?;
    writeln!(w, "<BIF VERSION=\"0.3\">")?;
    writeln!(w, "<NETWORK>")?;
    writeln!(w, "<NAME>credo</NAME>")?;
    for v in 0..graph.num_nodes() as u32 {
        writeln!(w, "<VARIABLE TYPE=\"nature\">")?;
        writeln!(w, "  <NAME>{}</NAME>", name_of(v))?;
        for s in 0..graph.cardinality(v) {
            writeln!(w, "  <OUTCOME>s{s}</OUTCOME>")?;
        }
        writeln!(w, "</VARIABLE>")?;
    }
    for v in 0..graph.num_nodes() as u32 {
        let card = graph.cardinality(v);
        let in_arcs = graph.in_arcs(v);
        writeln!(w, "<DEFINITION>")?;
        writeln!(w, "  <FOR>{}</FOR>", name_of(v))?;
        let parents: Vec<u32> = in_arcs.iter().map(|&a| graph.arc(a).src).collect();
        for &p in &parents {
            writeln!(w, "  <GIVEN>{}</GIVEN>", name_of(p))?;
        }
        write!(w, "  <TABLE>")?;
        if parents.is_empty() {
            for (i, &p) in graph.priors()[v as usize].as_slice().iter().enumerate() {
                if i > 0 {
                    write!(w, " ")?;
                }
                write!(w, "{p}")?;
            }
        } else {
            let parent_cards: Vec<usize> = parents.iter().map(|&p| graph.cardinality(p)).collect();
            let combos: usize = parent_cards.iter().product();
            let mut first = true;
            for combo in 0..combos {
                let mut states = vec![0usize; parents.len()];
                let mut rest = combo;
                for (j, &cj) in parent_cards.iter().enumerate().rev() {
                    states[j] = rest % cj;
                    rest /= cj;
                }
                let mut row = vec![1.0f64; card];
                for (i, &a) in in_arcs.iter().enumerate() {
                    let m = graph.potential(a);
                    for (c, slot) in row.iter_mut().enumerate() {
                        *slot *= m.get(states[i], c) as f64;
                    }
                }
                let z: f64 = row.iter().sum();
                for &val in &row {
                    if !first {
                        write!(w, " ")?;
                    }
                    first = false;
                    write!(w, "{}", if z > 0.0 { val / z } else { 1.0 / card as f64 })?;
                }
            }
        }
        writeln!(w, "</TABLE>")?;
        writeln!(w, "</DEFINITION>")?;
    }
    writeln!(w, "</NETWORK>")?;
    writeln!(w, "</BIF>")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::generators::{family_out, random_tree, GenOptions, PotentialKind};

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!-- a tiny network -->
<BIF VERSION="0.3">
<NETWORK>
<NAME>mini</NAME>
<VARIABLE TYPE="nature">
  <NAME>rain</NAME>
  <OUTCOME>no</OUTCOME>
  <OUTCOME>yes</OUTCOME>
</VARIABLE>
<VARIABLE TYPE="nature">
  <NAME>wet</NAME>
  <OUTCOME>no</OUTCOME>
  <OUTCOME>yes</OUTCOME>
</VARIABLE>
<DEFINITION>
  <FOR>rain</FOR>
  <TABLE>0.8 0.2</TABLE>
</DEFINITION>
<DEFINITION>
  <FOR>wet</FOR>
  <GIVEN>rain</GIVEN>
  <TABLE>0.9 0.1 0.05 0.95</TABLE>
</DEFINITION>
</NETWORK>
</BIF>
"#;

    #[test]
    fn parses_sample_network() {
        let g = read_str(SAMPLE).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        let rain = g.node_by_name("rain").unwrap();
        assert!((g.priors()[rain as usize].get(1) - 0.2).abs() < 1e-6);
        let wet = g.node_by_name("wet").unwrap();
        let pot = g.potential(g.in_arcs(wet)[0]);
        assert!((pot.get(1, 1) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = read_str("<BIF><NETWORK></BIF></NETWORK>").unwrap_err();
        assert!(err.to_string().contains("mismatched"), "{err}");
    }

    #[test]
    fn missing_table_is_rejected() {
        let src = r#"<BIF><NETWORK>
<VARIABLE><NAME>x</NAME><OUTCOME>a</OUTCOME><OUTCOME>b</OUTCOME></VARIABLE>
<DEFINITION><FOR>x</FOR></DEFINITION>
</NETWORK></BIF>"#;
        let err = read_str(src).unwrap_err();
        assert!(err.to_string().contains("TABLE"), "{err}");
    }

    #[test]
    fn wrong_table_size_is_rejected() {
        let src = r#"<BIF><NETWORK>
<VARIABLE><NAME>x</NAME><OUTCOME>a</OUTCOME><OUTCOME>b</OUTCOME></VARIABLE>
<DEFINITION><FOR>x</FOR><TABLE>0.5</TABLE></DEFINITION>
</NETWORK></BIF>"#;
        let err = read_str(src).unwrap_err();
        assert!(err.to_string().contains("entries"), "{err}");
    }

    #[test]
    fn family_out_roundtrips_structurally() {
        let g = family_out();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(back.num_nodes(), 5);
        assert_eq!(back.num_edges(), 4);
        assert_eq!(back.in_arcs(back.node_by_name("dog-out").unwrap()).len(), 2);
    }

    #[test]
    fn single_parent_tree_roundtrips_exactly() {
        let g = random_tree(
            10,
            &GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom),
        );
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(back.num_arcs(), g.num_arcs());
        for a in 0..g.num_arcs() as u32 {
            let (m1, m2) = (g.potential(a), back.potential(a));
            for p in 0..m1.rows() {
                for c in 0..m1.cols() {
                    assert!((m1.get(p, c) - m2.get(p, c)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn bif_and_xmlbif_agree_on_family_out() {
        let g = family_out();
        let mut bif_buf = Vec::new();
        crate::bif::write(&g, &mut bif_buf).unwrap();
        let from_bif = crate::bif::read(&bif_buf[..]).unwrap();
        let mut xml_buf = Vec::new();
        write(&g, &mut xml_buf).unwrap();
        let from_xml = read(&xml_buf[..]).unwrap();
        for v in 0..5u32 {
            assert!(from_bif.priors()[v as usize].linf_diff(&from_xml.priors()[v as usize]) < 1e-6);
        }
        assert_eq!(from_bif.num_arcs(), from_xml.num_arcs());
    }
}
