/root/repo/target/release/deps/exp_fig7_runtimes-d6313b9d609b3d59.d: crates/bench/src/bin/exp_fig7_runtimes.rs

/root/repo/target/release/deps/exp_fig7_runtimes-d6313b9d609b3d59: crates/bench/src/bin/exp_fig7_runtimes.rs

crates/bench/src/bin/exp_fig7_runtimes.rs:
