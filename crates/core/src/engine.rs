//! The engine abstraction Credo dispatches over (§3.1: "Based on a given
//! input graph and its metadata, Credo chooses the best from these
//! implementations before executing BP with that method").

use crate::opts::BpOptions;
use crate::stats::BpStats;
use crate::warm::{EvidenceDelta, WarmRun, WarmState};
use credo_graph::BeliefGraph;
use tracing::Dispatch;

/// Which of the two §3.3 processing paradigms an engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Per-node processing: each node pulls all its parents' states.
    Node,
    /// Per-edge processing: each edge pushes one message, combined
    /// atomically at the destination.
    Edge,
    /// The traditional two-pass (non-loopy) schedule (§2.1).
    Tree,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Paradigm::Node => write!(f, "Node"),
            Paradigm::Edge => write!(f, "Edge"),
            Paradigm::Tree => write!(f, "Tree"),
        }
    }
}

/// Where an engine executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Single-threaded CPU (the paper's "C" control implementations).
    CpuSequential,
    /// Multi-threaded CPU (the OpenMP-analogue engines).
    CpuParallel,
    /// The simulated GPU (the paper's CUDA implementations).
    GpuSimulated,
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::CpuSequential => write!(f, "C"),
            Platform::CpuParallel => write!(f, "OpenMP"),
            Platform::GpuSimulated => write!(f, "CUDA"),
        }
    }
}

/// Errors an engine can raise before or during execution.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// This engine requires every node to share one belief cardinality
    /// (true of the parallel edge engines, whose atomic accumulators are
    /// flat arrays).
    NonUniformCardinality,
    /// The graph (plus working buffers) does not fit in the simulated
    /// device's VRAM (§3.6/§4.2: TW and OR exceed the GTX 1070's 8 GB).
    OutOfDeviceMemory {
        /// Bytes the engine tried to allocate.
        required: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The graph failed structural validation.
    InvalidGraph(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NonUniformCardinality => {
                write!(f, "engine requires a uniform belief cardinality")
            }
            EngineError::OutOfDeviceMemory { required, capacity } => write!(
                f,
                "graph requires {required} bytes of device memory but only {capacity} available"
            ),
            EngineError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A belief-propagation implementation.
pub trait BpEngine {
    /// Display name, e.g. `"C Edge"` or `"CUDA Node"`.
    fn name(&self) -> &'static str;

    /// Processing paradigm.
    fn paradigm(&self) -> Paradigm;

    /// Execution platform.
    fn platform(&self) -> Platform;

    /// Runs BP in place: `graph.beliefs_mut()` holds the posteriors on
    /// return. Engines treat the current beliefs as the starting state, so
    /// callers wanting a clean run should [`crate::run_fresh`].
    ///
    /// Equivalent to [`BpEngine::run_traced`] with the no-op recorder;
    /// results are bit-identical between the two.
    fn run(&self, graph: &mut BeliefGraph, opts: &BpOptions) -> Result<BpStats, EngineError> {
        self.run_traced(graph, opts, &Dispatch::none())
    }

    /// Runs BP in place like [`BpEngine::run`], emitting telemetry through
    /// `trace`: a `run` span wrapping per-`iteration` spans (with delta /
    /// update-count / queue-depth fields), plus queue and contention
    /// counters. With [`Dispatch::none`] every emission site reduces to an
    /// inlined branch, so the instrumented hot path stays within noise of
    /// an uninstrumented one.
    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError>;

    /// Applies an evidence delta to warm-start state and re-infers.
    ///
    /// The default runs cold: the delta is bound, beliefs are reset to the
    /// evidence-bound priors, and the engine runs from scratch. Engines
    /// with a warm schedule (the node-paradigm CPU engines) override this
    /// to re-propagate only from the changed-evidence frontier, governed
    /// by the state's [`crate::warm::WarmPolicy`]. Either way the state's
    /// packed posteriors reflect the new evidence on return.
    fn run_from(
        &self,
        state: &mut WarmState,
        delta: &EvidenceDelta,
        opts: &BpOptions,
    ) -> Result<WarmRun, EngineError> {
        let changed = state.apply(delta)?;
        let frontier = state.frontier_for(&changed).len();
        let stats = self.run(state.begin_engine_run()?, opts)?;
        state.finish_engine_run(stats.converged);
        Ok(WarmRun {
            stats,
            warm: false,
            damped: false,
            frontier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(Paradigm::Node.to_string(), "Node");
        assert_eq!(Platform::GpuSimulated.to_string(), "CUDA");
        assert_eq!(Platform::CpuSequential.to_string(), "C");
    }

    #[test]
    fn errors_format() {
        let e = EngineError::OutOfDeviceMemory {
            required: 100,
            capacity: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(EngineError::NonUniformCardinality
            .to_string()
            .contains("uniform"));
    }
}
