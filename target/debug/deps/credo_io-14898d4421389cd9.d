/root/repo/target/debug/deps/credo_io-14898d4421389cd9.d: crates/io/src/lib.rs crates/io/src/bif.rs crates/io/src/mtx.rs crates/io/src/xmlbif.rs crates/io/src/error.rs

/root/repo/target/debug/deps/libcredo_io-14898d4421389cd9.rlib: crates/io/src/lib.rs crates/io/src/bif.rs crates/io/src/mtx.rs crates/io/src/xmlbif.rs crates/io/src/error.rs

/root/repo/target/debug/deps/libcredo_io-14898d4421389cd9.rmeta: crates/io/src/lib.rs crates/io/src/bif.rs crates/io/src/mtx.rs crates/io/src/xmlbif.rs crates/io/src/error.rs

crates/io/src/lib.rs:
crates/io/src/bif.rs:
crates/io/src/mtx.rs:
crates/io/src/xmlbif.rs:
crates/io/src/error.rs:
