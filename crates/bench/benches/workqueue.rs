//! Criterion benchmarks for the §3.5 work queue: repopulation cost and
//! the queued-vs-full-sweep engine tradeoff on a straggler-heavy graph.
//!
//! The binary installs a counting global allocator so the parallel
//! queue's no-allocation claim is an assertion, not a hope: after one
//! warm-up cycle, a steady-state [`ParWorkQueue::advance`] must perform
//! zero allocations (its merge cursors live in the queue).

use credo::engines::SeqNodeEngine;
use credo::{BpEngine, BpOptions};
use credo_core::par::ParWorkQueue;
use credo_core::WorkQueue;
use credo_graph::generators::{preferential_attachment, GenOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`] wrapper that counts allocations (`alloc` + `realloc`).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a plain
// relaxed atomic increment.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn bench_queue_cycle(c: &mut Criterion) {
    let n = 100_000usize;
    c.bench_function("queue_push_advance_100k", |b| {
        let mut q = WorkQueue::new(n, |_| true);
        q.advance(); // start empty
        b.iter(|| {
            for v in (0..n as u32).step_by(17) {
                q.push_next(v);
            }
            q.advance();
            black_box(q.len())
        });
    });
}

fn bench_par_queue_cycle(c: &mut Criterion) {
    let n = 100_000usize;
    let workers = 4usize;
    let mut q = ParWorkQueue::new(n, workers, |_| true);
    q.advance(); // drain the initial full active set
    let push_phase = |q: &mut ParWorkQueue| {
        let (_, mut handles) = q.begin_iteration();
        for v in (0..n as u32).step_by(17) {
            handles[(v as usize / 17) % workers].push(v);
        }
    };
    // Warm-up grows the runs / active / cursor buffers to capacity; from
    // then on `advance` must reuse them without touching the allocator.
    push_phase(&mut q);
    q.advance();
    push_phase(&mut q);
    let before = allocations();
    q.advance();
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state ParWorkQueue::advance allocated {during} times"
    );
    c.bench_function("par_queue_push_advance_100k", |b| {
        b.iter(|| {
            push_phase(&mut q);
            q.advance();
            black_box(q.len())
        });
    });
}

fn bench_queued_vs_plain(c: &mut Criterion) {
    let base = preferential_attachment(3_000, 4, &GenOptions::new(2).with_seed(3));
    let mut group = c.benchmark_group("node_engine_queue");
    group.sample_size(10);
    for (name, opts) in [
        ("plain", BpOptions::default()),
        ("queued", BpOptions::with_work_queue()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || base.clone(),
                |mut g| {
                    SeqNodeEngine.run(&mut g, &opts).unwrap();
                    g
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_cycle,
    bench_par_queue_cycle,
    bench_queued_vs_plain
);
criterion_main!(benches);
