/root/repo/target/release/deps/exp_openacc-f244673268fac0fb.d: crates/bench/src/bin/exp_openacc.rs

/root/repo/target/release/deps/exp_openacc-f244673268fac0fb: crates/bench/src/bin/exp_openacc.rs

crates/bench/src/bin/exp_openacc.rs:
