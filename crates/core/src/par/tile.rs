//! Degree-aware work tiling.
//!
//! The node paradigm's cost per node is dominated by its in-degree (one
//! mat-vec + one combine per incoming arc), so splitting the active list
//! into equal-*count* chunks leaves threads idle whenever degrees are
//! skewed — and the paper's benchmark suite is full of power-law and
//! Kronecker graphs where a handful of hubs carry most of the arcs.
//! [`degree_tiles`] instead cuts the active list into contiguous tiles of
//! near-equal **total arc count**, preserving everything the deterministic
//! engines rely on: tiles are contiguous, disjoint, and cover the list in
//! order, so per-node writes stay single-writer and the ascending-order
//! convergence reduction is untouched by the tile boundaries.

/// Splits `active` into at most `parts` contiguous tiles balanced by
/// `degrees[v] + 1` (the `+1` charges the fixed per-node publish/queue work
/// and keeps zero-degree nodes spread out). Returns fewer tiles when the
/// list is shorter than `parts`. Tiles concatenate back to exactly
/// `active`.
pub fn degree_tiles<'a>(active: &'a [u32], degrees: &[u32], parts: usize) -> Vec<&'a [u32]> {
    let parts = parts.max(1);
    if active.is_empty() {
        return Vec::new();
    }
    let mut remaining: u64 = active.iter().map(|&v| degrees[v as usize] as u64 + 1).sum();
    let mut tiles = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    // The cut target is fixed when a tile opens (remaining weight spread
    // over the remaining parts), so mid-tile accumulation cannot shrink it.
    let mut target = remaining.div_ceil(parts as u64);
    for (i, &v) in active.iter().enumerate() {
        let w = degrees[v as usize] as u64 + 1;
        acc += w;
        remaining -= w;
        if acc >= target {
            tiles.push(&active[start..=i]);
            start = i + 1;
            acc = 0;
            let parts_left = (parts - tiles.len()) as u64;
            if parts_left <= 1 {
                break;
            }
            target = remaining.div_ceil(parts_left);
        }
    }
    if start < active.len() {
        tiles.push(&active[start..]);
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_weight(tile: &[u32], degrees: &[u32]) -> u64 {
        tile.iter().map(|&v| degrees[v as usize] as u64 + 1).sum()
    }

    #[test]
    fn tiles_concatenate_to_active_list() {
        let degrees: Vec<u32> = (0..100).map(|i| (i * 7) % 13).collect();
        let active: Vec<u32> = (0..100).filter(|v| v % 3 != 0).collect();
        for parts in [1usize, 2, 3, 4, 7, 64, 200] {
            let tiles = degree_tiles(&active, &degrees, parts);
            assert!(tiles.len() <= parts.max(1));
            let flat: Vec<u32> = tiles.iter().flat_map(|t| t.iter().copied()).collect();
            assert_eq!(flat, active, "parts={parts}");
        }
    }

    #[test]
    fn empty_and_single() {
        let degrees = vec![5u32; 4];
        assert!(degree_tiles(&[], &degrees, 4).is_empty());
        let one = [2u32];
        let tiles = degree_tiles(&one, &degrees, 4);
        assert_eq!(tiles, vec![&one[..]]);
    }

    #[test]
    fn hub_heavy_lists_balance_by_arcs_not_counts() {
        // One hub with 1000 arcs followed by 100 degree-1 nodes: equal-count
        // halves would put ~551 arcs of skew on one side; degree tiles give
        // the hub its own tile.
        let mut degrees = vec![1u32; 101];
        degrees[0] = 1000;
        let active: Vec<u32> = (0..101).collect();
        let tiles = degree_tiles(&active, &degrees, 2);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0], &active[..1], "the hub fills its own tile");
        assert_eq!(tiles[1].len(), 100);
    }

    #[test]
    fn uniform_degrees_reduce_to_near_equal_counts() {
        let degrees = vec![4u32; 64];
        let active: Vec<u32> = (0..64).collect();
        let tiles = degree_tiles(&active, &degrees, 4);
        assert_eq!(tiles.len(), 4);
        for t in &tiles {
            assert_eq!(t.len(), 16);
        }
    }

    #[test]
    fn tile_weights_are_balanced() {
        let degrees: Vec<u32> = (0..1000).map(|i| (i * 31) % 97).collect();
        let active: Vec<u32> = (0..1000).collect();
        let parts = 8;
        let tiles = degree_tiles(&active, &degrees, parts);
        let total: u64 = tile_weight(&active, &degrees);
        let ideal = total as f64 / parts as f64;
        for t in &tiles {
            let w = tile_weight(t, &degrees) as f64;
            // Greedy contiguous cuts stay within one max-weight node of
            // ideal; with these degrees that is comfortably under 2x.
            assert!(w < ideal * 2.0, "tile weight {w} vs ideal {ideal}");
        }
    }
}
