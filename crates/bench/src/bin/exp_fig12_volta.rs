//! §4.4 / Figure 12 — portability of the classifier to Volta (V100).
//!
//! Paper: the random forest trained on GTX 1070 labels scores 72.2% F1 on
//! the V100; CUDA Edge overtakes CUDA Node in 8.3% more cases (cheaper
//! atomics, 1.5x bandwidth); average CUDA Node/Edge times ≈0.27s/0.30s;
//! the CUDA engines run 3.8x/3.2x faster than on Pascal, pushing the CUDA
//! Node speedup vs C Node to ~183x.

use credo::{BpOptions, Credo, Implementation, Selector};
use credo_bench::dataset::{build_full, labels, to_ml_dataset};
use credo_bench::report::{fmt_secs, fmt_speedup, save_json};
use credo_bench::scale_from_args;
use credo_gpusim::{PASCAL_GTX1070, VOLTA_V100};
use credo_ml::f1_macro;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    portability_f1: f64,
    pascal_f1: f64,
    edge_wins_pascal_pct: f64,
    edge_wins_volta_pct: f64,
    avg_cuda_node_secs_volta: f64,
    avg_cuda_edge_secs_volta: f64,
    volta_vs_pascal_edge: f64,
    volta_vs_pascal_node: f64,
    best_cuda_node_speedup_vs_c: f64,
}

fn secs_of(rec: &credo_bench::dataset::LabeledConfig, name: &str) -> Option<f64> {
    rec.times.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
}

fn main() {
    let scale = scale_from_args();
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("§4.4 / Fig 12: Volta portability (scale: {scale:?})"),
    );
    let opts = credo_bench::apply_max_iters(BpOptions::default());

    credo_bench::progress(&prog, "Benchmarking on the GTX 1070 profile…");
    let pascal = build_full(scale, PASCAL_GTX1070, &opts, 2, false);
    credo_bench::progress(&prog, "Benchmarking on the V100 profile…");
    let volta = build_full(scale, VOLTA_V100, &opts, 2, false);

    // Train the forest on Pascal labels; score it on both environments.
    let features: Vec<_> = pascal.iter().map(|r| r.features).collect();
    let selector = Selector::train(&features, &labels(&pascal));
    let predict = |recs: &[credo_bench::dataset::LabeledConfig]| -> Vec<usize> {
        let meta_rows = to_ml_dataset(recs);
        meta_rows
            .x
            .iter()
            .map(|row| match &selector {
                Selector::Forest(f) => credo_ml::Classifier::predict(f.as_ref(), row),
                _ => unreachable!(),
            })
            .collect()
    };
    let pascal_truth: Vec<usize> = pascal.iter().map(|r| r.label).collect();
    let volta_truth: Vec<usize> = volta.iter().map(|r| r.label).collect();
    let pascal_f1 = f1_macro(&pascal_truth, &predict(&pascal));
    let portability_f1 = f1_macro(&volta_truth, &predict(&volta));
    // The paper's F1 is over the binary Node/Edge labelling (§3.7).
    let to_paradigm = |ys: &[usize]| -> Vec<usize> {
        ys.iter().map(|&y| usize::from(y == 1 || y == 3)).collect()
    };
    let pascal_f1_bin = f1_macro(&to_paradigm(&pascal_truth), &to_paradigm(&predict(&pascal)));
    let portability_f1_bin = f1_macro(&to_paradigm(&volta_truth), &to_paradigm(&predict(&volta)));
    println!("\nForest trained on Pascal labels:");
    println!("  4-way F1 on Pascal: {pascal_f1:.3}   binary Node/Edge: {pascal_f1_bin:.3}");
    println!("  4-way F1 on Volta:  {portability_f1:.3}   binary Node/Edge: {portability_f1_bin:.3}   (paper: 72.2%)");

    // How often CUDA Edge beats CUDA Node on each architecture.
    let edge_wins = |recs: &[credo_bench::dataset::LabeledConfig]| -> f64 {
        let mut wins = 0usize;
        let mut total = 0usize;
        for r in recs {
            if let (Some(e), Some(n)) = (secs_of(r, "CUDA Edge"), secs_of(r, "CUDA Node")) {
                total += 1;
                if e < n {
                    wins += 1;
                }
            }
        }
        100.0 * wins as f64 / total.max(1) as f64
    };
    let (wp, wv) = (edge_wins(&pascal), edge_wins(&volta));
    println!("\nCUDA Edge beats CUDA Node: Pascal {wp:.1}% of cases, Volta {wv:.1}% (+{:.1} points; paper: +8.3)", wv - wp);

    // Average CUDA times and the cross-architecture speedups.
    let avg = |recs: &[credo_bench::dataset::LabeledConfig], name: &str| -> f64 {
        let v: Vec<f64> = recs.iter().filter_map(|r| secs_of(r, name)).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let (ve, vn) = (avg(&volta, "CUDA Edge"), avg(&volta, "CUDA Node"));
    let (pe, pn) = (avg(&pascal, "CUDA Edge"), avg(&pascal, "CUDA Node"));
    println!(
        "\nAverage CUDA times on Volta: Node {} / Edge {} (paper: 0.27s / 0.30s at full scale)",
        fmt_secs(vn),
        fmt_secs(ve)
    );
    println!(
        "Volta vs Pascal: Edge {} faster, Node {} faster (paper: 3.2x / 3.8x)",
        fmt_speedup(pe / ve),
        fmt_speedup(pn / vn)
    );

    // Best CUDA Node speedup vs C Node on Volta (paper: ~183x).
    let best = volta
        .iter()
        .filter_map(|r| {
            let c = secs_of(r, "C Node")?;
            let g = secs_of(r, "CUDA Node")?;
            Some((r.graph.clone(), c / g))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if let Some((graph, speedup)) = &best {
        println!(
            "Best CUDA Node speedup vs C Node on Volta: {} on {graph} (paper: ~183x)",
            fmt_speedup(*speedup)
        );
    }

    // Fig 12: Credo (Pascal-trained) vs always-C-Edge on the Volta device.
    println!("\nCredo (Pascal-trained selector) on the V100 vs always-C-Edge:");
    let credo = Credo::new(VOLTA_V100).with_selector(selector);
    let mut better = 0usize;
    let mut total = 0usize;
    for r in &volta {
        let (Some(ce), Some(best_secs)) = (
            secs_of(r, "C Edge"),
            r.times
                .iter()
                .map(|&(_, s)| s)
                .min_by(|a, b| a.partial_cmp(b).unwrap()),
        ) else {
            continue;
        };
        let predicted = Implementation::from_class_id(match &credo.selector() {
            Selector::Forest(f) => credo_ml::Classifier::predict(f.as_ref(), r.features.as_ref()),
            _ => unreachable!(),
        });
        let chosen_secs = secs_of(r, &predicted.to_string()).unwrap_or(ce);
        total += 1;
        if chosen_secs <= ce * 1.02 {
            better += 1;
        }
        let _ = best_secs;
    }
    println!("  matches or beats C Edge on {better}/{total} configurations");

    let out = Output {
        portability_f1,
        pascal_f1,
        edge_wins_pascal_pct: wp,
        edge_wins_volta_pct: wv,
        avg_cuda_node_secs_volta: vn,
        avg_cuda_edge_secs_volta: ve,
        volta_vs_pascal_edge: pe / ve,
        volta_vs_pascal_node: pn / vn,
        best_cuda_node_speedup_vs_c: best.map(|(_, s)| s).unwrap_or(f64::NAN),
    };
    if let Ok(p) = save_json("fig12_volta", &out) {
        println!("JSON: {}", p.display());
    }
}
