//! The OpenACC-analogue engine (§2.4).
//!
//! OpenACC ports the optimized C loops with pragmas, but (a) the default
//! scheduler "tr[ies] to schedule full transfers of the data between the
//! CPU and GPU after every iteration", (b) the convergence check crosses
//! the PCIe bus every iteration, and (c) the finer-grained CUDA tricks
//! (constant memory, work queues) are unavailable — "which require finer
//! grained control than what OpenACC offers". This engine reproduces that
//! execution profile on the simulator. `tuned()` applies the paper's
//! manual data-placement overrides: data stays resident and only a batched
//! convergence scalar is transferred.

use crate::edge::{charge_edge_thread, charge_marginalize_thread, charge_reset_thread};
use crate::node::charge_node_thread;
use crate::setup::{GraphOnDevice, TraceGuard};
use credo_core::{
    node_update, BpEngine, BpOptions, BpStats, Dispatch, EngineError, IterationStats, Paradigm,
    Platform,
};
use credo_gpusim::{atomic_mul_f32, Device, KernelStats, LaunchConfig, SharedSlice};
use credo_graph::{Belief, BeliefGraph};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Throughput penalty of pragma-generated kernels relative to the
/// hand-written §3.6 CUDA kernels: no kernel fusion, no shared-memory
/// staging, conservative gang/vector mapping and implicit data-presence
/// checks. Calibrated to §2.4's observation that "the OpenACC execution
/// times per iteration can be smaller" than the optimized C loop — i.e.
/// the generated kernels land just under CPU speed, two orders of
/// magnitude from the hand-tuned kernels, making the best tuned result
/// ≈1.25x over C (K21) as the paper reports.
const GENERATED_KERNEL_PENALTY: f64 = 100.0;

/// OpenACC-style GPU port of the Node or Edge paradigm.
pub struct OpenAccEngine {
    device: Device,
    paradigm: Paradigm,
    tuned: bool,
    batch: u32,
}

impl OpenAccEngine {
    /// Default (naive-scheduler) OpenACC port of the given paradigm.
    pub fn new(device: Device, paradigm: Paradigm) -> Self {
        assert!(
            matches!(paradigm, Paradigm::Node | Paradigm::Edge),
            "OpenACC port exists for the loopy paradigms only"
        );
        OpenAccEngine {
            device,
            paradigm,
            tuned: false,
            batch: 8,
        }
    }

    /// Applies the paper's data-placement overrides: keep data resident,
    /// batch the convergence transfer.
    pub fn tuned(mut self) -> Self {
        self.tuned = true;
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Applies the generated-kernel throughput penalty to a finished
    /// launch's compute/memory/atomic time (launch overhead is unchanged).
    fn penalize(&self, stats: KernelStats) {
        let work = stats.sim_time.saturating_sub(stats.launch_time);
        self.device
            .charge_busy(work.mul_f64(GENERATED_KERNEL_PENALTY - 1.0));
    }
}

impl BpEngine for OpenAccEngine {
    fn name(&self) -> &'static str {
        match (self.paradigm, self.tuned) {
            (Paradigm::Node, false) => "OpenACC Node",
            (Paradigm::Edge, false) => "OpenACC Edge",
            (Paradigm::Node, true) => "OpenACC Node (tuned)",
            (Paradigm::Edge, true) => "OpenACC Edge (tuned)",
            _ => unreachable!("constructor restricts paradigms"),
        }
    }

    fn paradigm(&self) -> Paradigm {
        self.paradigm
    }

    fn platform(&self) -> Platform {
        Platform::GpuSimulated
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let card = graph
            .uniform_cardinality()
            .ok_or(EngineError::NonUniformCardinality)?;
        let host_start = Instant::now();
        let dev_start = self.device.elapsed();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let _trace_guard = TraceGuard::attach(&self.device, trace);
        let resident = GraphOnDevice::upload(&self.device, graph)?;
        let n = graph.num_nodes();
        let k = card;
        // OpenACC has no constant-memory placement directive fine enough
        // for the joint matrix: it reads from global memory either way.
        let constant_pot = false;
        let belief_bytes = (n * k * 4) as u64;
        // §2.4: the default scheduler tries "to schedule full transfers of
        // the data between the CPU and GPU after every iteration" — the
        // whole device footprint, not just the beliefs.
        let footprint = crate::device_bytes_required(
            n as u64,
            graph.num_arcs() as u64,
            k as u64,
            graph.potentials().memory_bytes() as u64,
        );

        let nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        let arcs: Vec<u32> = (0..graph.num_arcs() as u32)
            .filter(|&a| !graph.observed()[graph.arc(a).dst as usize])
            .collect();
        let acc: Vec<AtomicU32> = if self.paradigm == Paradigm::Edge {
            (0..n * k).map(|_| AtomicU32::new(0)).collect()
        } else {
            Vec::new()
        };
        let mut scratch: Vec<Belief> = graph.beliefs().to_vec();
        let mut diffs: Vec<f32> = vec![0.0; n];

        let mut iterations = 0u32;
        let mut converged = false;
        let mut final_delta = 0.0f32;
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();

        while iterations < opts.max_iterations {
            let iter_dev_start = self.device.elapsed();
            let iter_span = trace.span(
                "iteration",
                &[
                    ("iter", (iterations as u64).into()),
                    ("queue_depth", nodes.len().into()),
                ],
            );
            if !self.tuned {
                // Naive scheduler: the full data set shuttles both ways
                // every iteration.
                self.device.charge_h2d(footprint);
            }

            match self.paradigm {
                Paradigm::Node => {
                    let g = &*graph;
                    let prev = g.beliefs();
                    let scratch_shared = SharedSlice::new(&mut scratch);
                    let diffs_shared = SharedSlice::new(&mut diffs);
                    let nodes_ref = &nodes;
                    let stats = self.device.launch(
                        LaunchConfig::for_items(nodes_ref.len(), 1024).with_name("acc_node_update"),
                        |ctx, tid| {
                            if tid >= nodes_ref.len() {
                                return;
                            }
                            let v = nodes_ref[tid];
                            charge_node_thread(ctx, k, g.in_arcs(v).len(), constant_pot);
                            let (new, _) = node_update(g, v, prev);
                            let diff = new.l1_diff(&prev[v as usize]);
                            // SAFETY: unique node ids per thread.
                            unsafe {
                                scratch_shared.write(v as usize, new);
                                diffs_shared.write(v as usize, diff);
                            }
                        },
                    );
                    self.penalize(stats);
                    message_updates += arcs.len() as u64;
                }
                Paradigm::Edge => {
                    // Reset, combine, marginalize — as in the CUDA engine
                    // but without queues or constant memory.
                    {
                        let g = &*graph;
                        let acc_ref = &acc;
                        let nodes_ref = &nodes;
                        let stats = self.device.launch(
                            LaunchConfig::for_items(nodes_ref.len(), 1024)
                                .with_name("acc_edge_reset"),
                            |ctx, tid| {
                                if tid >= nodes_ref.len() {
                                    return;
                                }
                                charge_reset_thread(ctx, k);
                                let v = nodes_ref[tid] as usize;
                                let prior = &g.priors()[v];
                                for st in 0..k {
                                    acc_ref[v * k + st]
                                        .store(prior.get(st).to_bits(), Ordering::Relaxed);
                                }
                            },
                        );
                        self.penalize(stats);
                    }
                    {
                        let g = &*graph;
                        let acc_ref = &acc;
                        let arcs_ref = &arcs;
                        let cfg = LaunchConfig::for_items(arcs_ref.len(), 1024)
                            .with_atomic_targets((nodes.len() * k) as u64)
                            .with_name("acc_edge_combine");
                        let stats = self.device.launch(cfg, |ctx, tid| {
                            if tid >= arcs_ref.len() {
                                return;
                            }
                            charge_edge_thread(ctx, k, constant_pot);
                            let a = arcs_ref[tid];
                            let arc = g.arc(a);
                            let msg = g.potential(a).message(&g.beliefs()[arc.src as usize]);
                            for st in 0..k {
                                atomic_mul_f32(&acc_ref[arc.dst as usize * k + st], msg.get(st));
                            }
                        });
                        self.penalize(stats);
                        message_updates += arcs.len() as u64;
                    }
                    {
                        let acc_ref = &acc;
                        let prev = graph.beliefs();
                        let scratch_shared = SharedSlice::new(&mut scratch);
                        let diffs_shared = SharedSlice::new(&mut diffs);
                        let nodes_ref = &nodes;
                        let stats = self.device.launch(
                            LaunchConfig::for_items(nodes_ref.len(), 1024)
                                .with_name("acc_edge_marginalize"),
                            |ctx, tid| {
                                if tid >= nodes_ref.len() {
                                    return;
                                }
                                charge_marginalize_thread(ctx, k);
                                let v = nodes_ref[tid] as usize;
                                let mut new = Belief::zeros(k);
                                for st in 0..k {
                                    new.set(
                                        st,
                                        f32::from_bits(acc_ref[v * k + st].load(Ordering::Relaxed)),
                                    );
                                }
                                new.normalize();
                                let diff = new.l1_diff(&prev[v]);
                                // SAFETY: unique node ids per thread.
                                unsafe {
                                    scratch_shared.write(v, new);
                                    diffs_shared.write(v, diff);
                                }
                            },
                        );
                        self.penalize(stats);
                    }
                }
                Paradigm::Tree => unreachable!("constructor restricts paradigms"),
            }
            node_updates += nodes.len() as u64;
            for &v in &nodes {
                graph.beliefs_mut()[v as usize] = scratch[v as usize];
            }
            iterations += 1;

            // Convergence: naive mode downloads the whole belief array and
            // reduces on the host every iteration; tuned mode reduces on
            // device and transfers one scalar per batch.
            let mut stop = false;
            if self.tuned {
                if iterations.is_multiple_of(self.batch) || iterations >= opts.max_iterations {
                    let sum = self.device.reduce_sum(&diffs);
                    self.device.charge_d2h(4);
                    final_delta = sum;
                    if sum < opts.threshold {
                        converged = true;
                        stop = true;
                    }
                }
            } else {
                self.device.charge_d2h(footprint);
                self.device.charge_d2h((n * 4) as u64);
                let sum: f32 = diffs.iter().map(|&d| d as f64).sum::<f64>() as f32;
                final_delta = sum;
                if sum < opts.threshold {
                    converged = true;
                    stop = true;
                }
            }
            if nodes.is_empty() {
                converged = true;
                stop = true;
            }

            // Stats-only host sum; the convergence logic above is the
            // authority and never reads it.
            let iter_delta: f32 = nodes.iter().map(|&v| diffs[v as usize]).sum();
            if trace.enabled() {
                iter_span.record(&[("delta", iter_delta.into())]);
            }
            drop(iter_span);
            per_iteration.push(IterationStats {
                delta: iter_delta,
                node_updates: nodes.len() as u64,
                message_updates: arcs.len() as u64,
                queue_depth: nodes.len() as u64,
                elapsed: self.device.elapsed() - iter_dev_start,
            });
            if stop {
                break;
            }
        }

        self.device.charge_d2h(belief_bytes);
        drop(resident);

        if trace.enabled() {
            run_span.record(&[
                ("iterations", iterations.into()),
                ("converged", converged.into()),
                ("kernel_launches", self.device.kernel_launches().into()),
                ("transfers", self.device.transfers().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations,
            converged,
            final_delta,
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: self.device.elapsed() - dev_start,
            host_time: host_start.elapsed(),
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CudaEdgeEngine, CudaNodeEngine};
    use credo_core::seq::SeqEdgeEngine;
    use credo_gpusim::PASCAL_GTX1070;
    use credo_graph::generators::{synthetic, GenOptions};

    fn device() -> Device {
        Device::new(PASCAL_GTX1070)
    }

    #[test]
    fn results_match_sequential() {
        for paradigm in [Paradigm::Node, Paradigm::Edge] {
            let mut g1 = synthetic(200, 800, &GenOptions::new(2).with_seed(61));
            let mut g2 = g1.clone();
            SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
            OpenAccEngine::new(device(), paradigm)
                .run(&mut g2, &BpOptions::default())
                .unwrap();
            for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
                assert!(a.linf_diff(b) < 1e-3, "{paradigm}");
            }
        }
    }

    #[test]
    fn naive_scheduling_is_slower_than_cuda() {
        // §2.4's conclusion: the pragma port cannot match hand-written CUDA.
        let mut g1 = synthetic(2_000, 8_000, &GenOptions::new(2).with_seed(5));
        let mut g2 = g1.clone();
        let acc = OpenAccEngine::new(device(), Paradigm::Edge)
            .run(&mut g1, &BpOptions::default())
            .unwrap();
        let cuda = CudaEdgeEngine::new(device())
            .run(&mut g2, &BpOptions::default())
            .unwrap();
        assert!(
            acc.reported_time > cuda.reported_time,
            "openacc {:?} vs cuda {:?}",
            acc.reported_time,
            cuda.reported_time
        );
    }

    #[test]
    fn tuning_recovers_most_of_the_gap() {
        // Fixed iteration budget: tuned mode only checks convergence every
        // `batch` iterations, so on a graph that happens to converge just
        // past a batch boundary it can run a few extra sweeps. Equal
        // iteration counts isolate what tuning actually changes — the
        // per-iteration transfer schedule.
        let opts = BpOptions::default()
            .with_threshold(0.0)
            .with_max_iterations(32);
        let mut g1 = synthetic(2_000, 8_000, &GenOptions::new(2).with_seed(5));
        let mut g2 = g1.clone();
        let naive = OpenAccEngine::new(device(), Paradigm::Node)
            .run(&mut g1, &opts)
            .unwrap();
        let tuned = OpenAccEngine::new(device(), Paradigm::Node)
            .tuned()
            .run(&mut g2, &opts)
            .unwrap();
        assert_eq!(naive.iterations, tuned.iterations);
        assert!(tuned.reported_time < naive.reported_time);
    }

    #[test]
    fn node_paradigm_matches_cuda_node() {
        let mut g1 = synthetic(150, 600, &GenOptions::new(3).with_seed(77));
        let mut g2 = g1.clone();
        CudaNodeEngine::new(device())
            .run(&mut g1, &BpOptions::default())
            .unwrap();
        OpenAccEngine::new(device(), Paradigm::Node)
            .tuned()
            .run(&mut g2, &BpOptions::default())
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "loopy paradigms")]
    fn tree_paradigm_rejected() {
        let _ = OpenAccEngine::new(device(), Paradigm::Tree);
    }
}
