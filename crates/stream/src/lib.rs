//! # credo-stream
//!
//! Two-pass streaming lowerer: Credo-MTX node/edge files straight into a
//! sharded, packed execution plan — without ever materializing a
//! whole-graph [`credo_graph::BeliefGraph`].
//!
//! The §3.2 streaming format exists so BP can scale past the
//! thousands-of-nodes ceiling of resident formats, but a parse that
//! builds the full graph (and then compiles a full
//! [`credo_graph::ExecGraph`] on top) forfeits that: peak memory is ~2×
//! the graph. This crate keeps only O(nodes) bookkeeping plus **one
//! shard's** arc/potential arrays in memory at a time:
//!
//! * **Pass 1** streams both files once: the node file yields per-node
//!   cardinalities, the edge file per-node in-degrees. The node space is
//!   then split into K contiguous ranges balanced by in-arc count
//!   ([`credo_graph::partition_ranges`]), and one more edge scan marks
//!   the boundary nodes (endpoints of shard-crossing edges) that make up
//!   the frontier.
//! * **Pass 2** streams the files again per shard, counting-sorting each
//!   shard's arcs into CSR order through per-node cursors, interning
//!   potentials and assigning halo slots in ascending arc id order — the
//!   exact layout contract of [`credo_graph::ExecShard::compile_range`],
//!   so a streamed shard is byte-identical to one compiled from the
//!   resident graph.
//!
//! Emitted shards either stay resident ([`lower`] →
//! [`credo_graph::ShardedExec`]) or spill to disk as they are built
//! ([`lower_spill`] → [`SpilledShards`]), in which case
//! [`credo_core::run_sharded`] reloads one shard per sweep visit and peak
//! arc memory is O(largest shard + frontier).
//!
//! Both paths share the [`credo_io::mtx`] scanners with the resident
//! reader, so streamed and resident ingestion accept and reject exactly
//! the same inputs, with the same line-numbered errors.

#![warn(missing_docs)]

mod lower;
mod spill;

pub use lower::{lower, lower_files, lower_files_spill, lower_spill};
pub use spill::SpilledShards;
