//! A small multi-layer perceptron — the paper's §4.3 "Multi-Layer
//! Perception" comparison classifier (one hidden ReLU layer, softmax
//! output, SGD on cross-entropy).

use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-hidden-layer MLP classifier.
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // classes × hidden
    b2: Vec<f64>,
}

impl MlpClassifier {
    /// An MLP with `hidden` ReLU units.
    pub fn new(hidden: usize, seed: u64) -> Self {
        assert!(hidden >= 1, "need at least one hidden unit");
        MlpClassifier {
            hidden,
            epochs: 300,
            lr: 0.05,
            seed,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
        }
    }

    fn forward(&self, row: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| (w.iter().zip(row).map(|(a, x)| a * x).sum::<f64>() + b).max(0.0))
            .collect();
        let mut logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&h).map(|(a, x)| a * x).sum::<f64>() + b)
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for l in &mut logits {
            *l = (*l - max).exp();
            z += *l;
        }
        for l in &mut logits {
            *l /= z;
        }
        (h, logits)
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty(), "cannot fit on no data");
        let d = x[0].len();
        let classes = y.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (2.0 / self.hidden as f64).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| (0..d).map(|_| rng.gen_range(-scale1..scale1)).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden];
        self.w2 = (0..classes)
            .map(|_| {
                (0..self.hidden)
                    .map(|_| rng.gen_range(-scale2..scale2))
                    .collect()
            })
            .collect();
        self.b2 = vec![0.0; classes];

        for _ in 0..self.epochs {
            for _ in 0..x.len() {
                let i = rng.gen_range(0..x.len());
                let (h, probs) = self.forward(&x[i]);
                // Output gradient: softmax − one-hot.
                let dout: Vec<f64> = probs
                    .iter()
                    .enumerate()
                    .map(|(c, &p)| p - f64::from(c == y[i]))
                    .collect();
                // Hidden gradient through ReLU.
                let mut dh = vec![0.0; self.hidden];
                for (c, g) in dout.iter().enumerate() {
                    for (j, dhj) in dh.iter_mut().enumerate() {
                        *dhj += g * self.w2[c][j];
                    }
                }
                for (j, dhj) in dh.iter_mut().enumerate() {
                    if h[j] <= 0.0 {
                        *dhj = 0.0;
                    }
                }
                // Updates.
                for (c, g) in dout.iter().enumerate() {
                    for (j, hj) in h.iter().enumerate() {
                        self.w2[c][j] -= self.lr * g * hj;
                    }
                    self.b2[c] -= self.lr * g;
                }
                for (j, g) in dh.iter().enumerate() {
                    for (k, xk) in x[i].iter().enumerate() {
                        self.w1[j][k] -= self.lr * g * xk;
                    }
                    self.b1[j] -= self.lr * g;
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.w1.is_empty(), "fit before predict");
        let (_, probs) = self.forward(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;

    #[test]
    fn learns_xor() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let mut mlp = MlpClassifier::new(8, 7);
        mlp.fit(&x, &y);
        assert_eq!(mlp.predict_batch(&x), y, "XOR needs the hidden layer");
    }

    #[test]
    fn learns_linear_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let j = (i % 10) as f64 * 0.02;
            x.push(vec![-1.0 - j]);
            y.push(0);
            x.push(vec![1.0 + j]);
            y.push(1);
        }
        let mut mlp = MlpClassifier::new(4, 2);
        mlp.fit(&x, &y);
        assert!(accuracy(&y, &mlp.predict_batch(&x)) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut a = MlpClassifier::new(3, 11);
        let mut b = MlpClassifier::new(3, 11);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&[0.3]), b.predict(&[0.3]));
        assert_eq!(a.w1, b.w1);
    }
}
