//! Benchmark-graph generators.
//!
//! The paper's evaluation (Table 1) mixes synthetic `N×4N` graphs with real
//! social/web graphs from networkrepository.com and Graph500 Kronecker
//! graphs. Real downloads are unavailable offline, so these generators
//! synthesize structurally equivalent stand-ins (see DESIGN.md's
//! substitution notes): what matters for the paper's Node-vs-Edge tradeoffs
//! is the degree distribution shape, which each generator preserves.

mod family_out;
mod grid;
mod kronecker;
mod powerlaw;
mod synthetic;
mod trees;

pub use family_out::family_out;
pub use grid::grid;
pub use kronecker::kronecker;
pub use powerlaw::preferential_attachment;
pub use synthetic::synthetic;
pub use trees::{random_dag, random_tree};

use crate::beliefs::Belief;
use crate::builder::GraphBuilder;
use crate::potentials::JointMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How edge potentials are attached to a generated graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PotentialKind {
    /// One shared Potts smoothing matrix with the given disagreement mass
    /// (§2.2's refined mode; the default for the benchmark suite).
    SharedSmoothing(f32),
    /// One shared random row-stochastic matrix.
    SharedRandom,
    /// A distinct random matrix per edge (the original, memory-heavy mode).
    PerEdgeRandom,
}

/// Options common to all random generators.
#[derive(Clone, Copy, Debug)]
pub struct GenOptions {
    /// Belief cardinality for every node (2 = binary use case, 3 = virus
    /// propagation, 32 = image correction).
    pub beliefs: usize,
    /// RNG seed — generation is fully deterministic given the options.
    pub seed: u64,
    /// Potential attachment mode.
    pub potentials: PotentialKind,
}

impl GenOptions {
    /// Binary-belief defaults with a fixed seed.
    pub fn new(beliefs: usize) -> Self {
        GenOptions {
            beliefs,
            seed: 0x5eed,
            potentials: PotentialKind::SharedSmoothing(0.2),
        }
    }

    /// Same options with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same options with a different potential mode.
    pub fn with_potentials(mut self, p: PotentialKind) -> Self {
        self.potentials = p;
        self
    }

    pub(crate) fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// A random prior: a draw from a symmetric Dirichlet-ish distribution
/// (uniform components, normalized), biased away from exact zeros.
pub(crate) fn random_prior<R: Rng + ?Sized>(beliefs: usize, rng: &mut R) -> Belief {
    let mut b = Belief::zeros(beliefs);
    for s in 0..beliefs {
        b.set(s, rng.gen_range(0.05f32..1.0));
    }
    b.normalize();
    b
}

/// Assembles a graph from an undirected edge list according to `opts`.
pub(crate) fn assemble(
    num_nodes: usize,
    edges: &[(u32, u32)],
    opts: &GenOptions,
    rng: &mut StdRng,
) -> crate::BeliefGraph {
    let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
    for _ in 0..num_nodes {
        b.add_node(random_prior(opts.beliefs, rng));
    }
    match opts.potentials {
        PotentialKind::SharedSmoothing(eps) => {
            b.shared_potential(JointMatrix::smoothing(opts.beliefs, eps));
            for &(u, v) in edges {
                b.add_undirected_edge(u, v);
            }
        }
        PotentialKind::SharedRandom => {
            b.shared_potential(JointMatrix::random(opts.beliefs, opts.beliefs, rng));
            for &(u, v) in edges {
                b.add_undirected_edge(u, v);
            }
        }
        PotentialKind::PerEdgeRandom => {
            for &(u, v) in edges {
                let m = JointMatrix::random(opts.beliefs, opts.beliefs, rng);
                b.add_undirected_edge_with(u, v, m);
            }
        }
    }
    b.build().expect("generated graph must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let opts = GenOptions::new(3).with_seed(42);
        let a = synthetic(50, 200, &opts);
        let b = synthetic(50, 200, &opts);
        assert_eq!(a.num_arcs(), b.num_arcs());
        for (x, y) in a.priors().iter().zip(b.priors()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        for (x, y) in a.arcs().iter().zip(b.arcs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic(50, 200, &GenOptions::new(2).with_seed(1));
        let b = synthetic(50, 200, &GenOptions::new(2).with_seed(2));
        let same = a
            .arcs()
            .iter()
            .zip(b.arcs())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.num_arcs(), "seeds should change the edge set");
    }

    #[test]
    fn per_edge_mode_builds_valid_graphs() {
        let opts = GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom);
        let g = synthetic(20, 60, &opts);
        assert!(!g.potentials().is_shared());
        g.validate().unwrap();
    }

    #[test]
    fn priors_are_normalized() {
        let g = synthetic(30, 90, &GenOptions::new(5));
        for p in g.priors() {
            assert!(p.is_normalized(1e-4));
            assert!(p.is_valid());
        }
    }
}
