//! The two-pass streaming lowerer (see the crate docs for the pass
//! structure).

use credo_graph::{
    partition_ranges, Belief, ExecShard, JointMatrix, PackedArc, ShardCopy, ShardedExec,
    ShardedMeta,
};
use credo_io::mtx::{EdgeScanner, NodeScanner};
use credo_io::IoError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Streams the MTX pair into a fully resident [`ShardedExec`] with
/// `shards` contiguous, in-arc-balanced shards.
pub fn lower<R1, R2, F1, F2>(
    open_nodes: F1,
    open_edges: F2,
    shards: usize,
) -> Result<ShardedExec, IoError>
where
    R1: BufRead,
    R2: BufRead,
    F1: Fn() -> std::io::Result<R1>,
    F2: Fn() -> std::io::Result<R2>,
{
    let mut out = Vec::with_capacity(shards);
    let meta = lower_impl(&open_nodes, &open_edges, shards, |s| {
        out.push(s);
        Ok(())
    })?;
    Ok(ShardedExec { meta, shards: out })
}

/// [`lower`] over on-disk files.
pub fn lower_files(nodes: &Path, edges: &Path, shards: usize) -> Result<ShardedExec, IoError> {
    lower(
        || std::fs::File::open(nodes).map(BufReader::new),
        || std::fs::File::open(edges).map(BufReader::new),
        shards,
    )
}

/// Streams the MTX pair into shards spilled to `dir` as they are built:
/// only one shard's arc/potential arrays are ever resident, during its
/// own pass-2 scan. The returned [`crate::SpilledShards`] reloads one
/// shard at a time for [`credo_core::run_sharded`].
pub fn lower_spill<R1, R2, F1, F2>(
    open_nodes: F1,
    open_edges: F2,
    shards: usize,
    dir: &Path,
) -> Result<crate::SpilledShards, IoError>
where
    R1: BufRead,
    R2: BufRead,
    F1: Fn() -> std::io::Result<R1>,
    F2: Fn() -> std::io::Result<R2>,
{
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(shards);
    let mut max_shard_bytes = 0usize;
    let meta = lower_impl(&open_nodes, &open_edges, shards, |s| {
        let path = dir.join(format!("shard_{}.bin", paths.len()));
        max_shard_bytes = max_shard_bytes.max(s.memory_bytes());
        crate::spill::write_shard(&path, &s)?;
        paths.push(path);
        Ok(())
    })?;
    Ok(crate::SpilledShards::new(meta, paths, max_shard_bytes))
}

/// [`lower_spill`] over on-disk files.
pub fn lower_files_spill(
    nodes: &Path,
    edges: &Path,
    shards: usize,
    dir: &Path,
) -> Result<crate::SpilledShards, IoError> {
    lower_spill(
        || std::fs::File::open(nodes).map(BufReader::new),
        || std::fs::File::open(edges).map(BufReader::new),
        shards,
        dir,
    )
}

/// Shard index owning global node `v` under contiguous `ranges`.
#[inline]
fn shard_of(ranges: &[(u32, u32)], v: u32) -> usize {
    ranges.partition_point(|&(lo, _)| lo <= v) - 1
}

fn lower_impl<R1, R2>(
    open_nodes: &dyn Fn() -> std::io::Result<R1>,
    open_edges: &dyn Fn() -> std::io::Result<R2>,
    shards: usize,
    mut sink: impl FnMut(ExecShard) -> Result<(), IoError>,
) -> Result<ShardedMeta, IoError>
where
    R1: BufRead,
    R2: BufRead,
{
    let shards = shards.max(1);

    // Pass 1a: cardinalities.
    let mut ns = NodeScanner::open(open_nodes()?)?;
    let n = ns.num_nodes();
    let mut cards = vec![0u8; n];
    while let Some((id, probs)) = ns.next_node()? {
        cards[id] = probs.len() as u8;
    }

    // Pass 1b: per-node in-degrees (each undirected edge line contributes
    // one in-arc at both endpoints), plus the shared potential if any.
    let mut degrees = vec![0u32; n];
    let shared_fwd: Option<JointMatrix>;
    {
        let mut es = EdgeScanner::open(open_edges()?, &cards)?;
        shared_fwd = es.shared().cloned();
        while let Some(e) = es.next_edge()? {
            degrees[e.src as usize] += 1;
            degrees[e.dst as usize] += 1;
        }
    }
    let shared_rev = shared_fwd.as_ref().map(|m| m.transposed());
    let ranges = partition_ranges(&degrees, shards);

    // Pass 1c: mark boundary nodes — the endpoints of shard-crossing
    // edges. Their sorted ids define the frontier layout up front, so
    // every shard's import/export lists can be built as the shard is.
    let mut boundary = vec![false; n];
    {
        let mut es = EdgeScanner::open(open_edges()?, &cards)?;
        while let Some(e) = es.next_edge()? {
            if shard_of(&ranges, e.src) != shard_of(&ranges, e.dst) {
                boundary[e.src as usize] = true;
                boundary[e.dst as usize] = true;
            }
        }
    }
    let frontier: Vec<u32> = (0..n as u32).filter(|&v| boundary[v as usize]).collect();
    let mut frontier_off = Vec::with_capacity(frontier.len() + 1);
    let mut off = 0u32;
    for &gid in &frontier {
        frontier_off.push(off);
        off += cards[gid as usize] as u32;
    }
    frontier_off.push(off);
    let mut frontier_init = vec![0.0f32; off as usize];
    let frontier_slot =
        |gid: u32, frontier: &[u32]| -> usize { frontier.binary_search(&gid).unwrap() };

    // Pass 2, per shard: priors from the node file, then a counting-sort
    // of the shard's in-arcs from the edge file.
    let mut imports = Vec::with_capacity(shards);
    let mut exports = Vec::with_capacity(shards);
    let mut total_arcs = 0usize;
    for &(lo, hi) in &ranges {
        let local = (hi - lo) as usize;

        // Priors for the local range; boundary nodes owned here also seed
        // the initial frontier.
        let mut priors = Vec::new();
        {
            let mut ns = NodeScanner::open(open_nodes()?)?;
            while let Some((id, probs)) = ns.next_node()? {
                let gid = id as u32;
                if gid >= hi {
                    break;
                }
                if gid < lo {
                    continue;
                }
                let mut b = Belief::from_slice(probs);
                b.normalize();
                priors.extend_from_slice(b.as_slice());
                if boundary[id] {
                    let f = frontier_off[frontier_slot(gid, &frontier)] as usize;
                    frontier_init[f..f + b.len()].copy_from_slice(b.as_slice());
                }
            }
        }

        // Local in-CSR skeleton from the pass-1 degrees.
        let mut in_off = Vec::with_capacity(local + 1);
        let mut arcs_total = 0u32;
        for v in lo..hi {
            in_off.push(arcs_total);
            arcs_total += degrees[v as usize];
        }
        in_off.push(arcs_total);
        let mut cursors: Vec<u32> = in_off[..local].to_vec();
        // `src_off` temporarily holds the shard slot index; resolved to a
        // packed offset once the halo is complete.
        let mut in_arcs = vec![
            PackedArc {
                src_off: 0,
                pot_off: 0,
                src_card: 0,
                dst_card: 0
            };
            arcs_total as usize
        ];

        let mut pot_pool: Vec<f32> = Vec::new();
        let mut pool_matrices = 0u32;
        let mut dedup: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut halo: Vec<u32> = Vec::new();
        let mut halo_slot: HashMap<u32, u32> = HashMap::new();
        {
            let mut intern = |data: &[f32]| -> u32 {
                let key: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
                *dedup.entry(key).or_insert_with(|| {
                    let at = pot_pool.len();
                    assert!(
                        at + data.len() <= u32::MAX as usize,
                        "shard potential pool exceeds u32 indexing"
                    );
                    pot_pool.extend_from_slice(data);
                    pool_matrices += 1;
                    at as u32
                })
            };
            let mut es = EdgeScanner::open(open_edges()?, &cards)?;
            let mut rev_scratch: Vec<f32> = Vec::new();
            while let Some(e) = es.next_edge()? {
                let lineno = e.lineno;
                let (u, v) = (e.src, e.dst);
                let (cu, cv) = (cards[u as usize] as usize, cards[v as usize] as usize);
                // Forward arc u -> v then reverse arc v -> u, matching the
                // builder's arc id order — and therefore the ascending
                // arc id scan `compile_range` interns in.
                for (src, dst, rows, cols, fwd) in [(u, v, cu, cv, true), (v, u, cv, cu, false)] {
                    if dst < lo || dst >= hi {
                        continue;
                    }
                    let pot_off = match (&shared_fwd, &shared_rev) {
                        (Some(f), Some(r)) => intern(if fwd { f.data() } else { r.data() }),
                        _ => {
                            let m = e.matrix.expect("per-edge mode carries a matrix");
                            if fwd {
                                intern(m)
                            } else {
                                rev_scratch.clear();
                                rev_scratch.resize(rows * cols, 0.0);
                                for i in 0..cols {
                                    for j in 0..rows {
                                        rev_scratch[j * cols + i] = m[i * rows + j];
                                    }
                                }
                                intern(&rev_scratch)
                            }
                        }
                    };
                    let slot = if src >= lo && src < hi {
                        src - lo
                    } else {
                        let next = halo.len() as u32;
                        *halo_slot.entry(src).or_insert_with(|| {
                            halo.push(src);
                            next
                        }) + local as u32
                    };
                    let dl = (dst - lo) as usize;
                    let pos = cursors[dl];
                    if pos >= in_off[dl + 1] {
                        return Err(IoError::Parse {
                            format: "Credo-MTX",
                            line: lineno,
                            message: format!(
                                "edge file gained arcs into node {} between passes",
                                dst + 1
                            ),
                        });
                    }
                    cursors[dl] = pos + 1;
                    in_arcs[pos as usize] = PackedArc {
                        src_off: slot,
                        pot_off,
                        src_card: rows as u16,
                        dst_card: cols as u16,
                    };
                }
            }
        }

        // Packed offsets over local nodes then halo slots; resolve the
        // temporary slot indices.
        let mut node_off = Vec::with_capacity(local + halo.len() + 1);
        let mut poff = 0u64;
        for v in lo..hi {
            node_off.push(poff as u32);
            poff += cards[v as usize] as u64;
        }
        for &g in &halo {
            node_off.push(poff as u32);
            poff += cards[g as usize] as u64;
        }
        assert!(
            poff <= u32::MAX as u64,
            "packed shard belief array exceeds u32 indexing"
        );
        node_off.push(poff as u32);
        for arc in &mut in_arcs {
            arc.src_off = node_off[arc.src_off as usize];
        }

        imports.push(
            halo.iter()
                .enumerate()
                .map(|(i, &gid)| ShardCopy {
                    local_off: node_off[local + i],
                    frontier_off: frontier_off[frontier_slot(gid, &frontier)],
                    card: cards[gid as usize] as u16,
                })
                .collect::<Vec<_>>(),
        );
        let from = frontier.partition_point(|&g| g < lo);
        let to = frontier.partition_point(|&g| g < hi);
        exports.push(
            frontier[from..to]
                .iter()
                .map(|&gid| ShardCopy {
                    local_off: node_off[(gid - lo) as usize],
                    frontier_off: frontier_off[frontier_slot(gid, &frontier)],
                    card: cards[gid as usize] as u16,
                })
                .collect::<Vec<_>>(),
        );
        total_arcs += in_arcs.len();

        sink(ExecShard {
            range: (lo, hi),
            node_off: node_off.into(),
            priors: priors.into(),
            in_off: in_off.into(),
            in_arcs: in_arcs.into(),
            pot_pool: pot_pool.into(),
            pool_matrices,
            observed: vec![false; local],
            halo,
        })?;
    }

    let uniform_card = cards
        .first()
        .copied()
        .filter(|&c| cards.iter().all(|&x| x == c));
    Ok(ShardedMeta {
        num_nodes: n,
        cards,
        ranges,
        frontier,
        frontier_off,
        frontier_init,
        imports,
        exports,
        uniform_card,
        total_arcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::generators::{
        grid, kronecker, preferential_attachment, synthetic, GenOptions, PotentialKind,
    };
    use credo_graph::BeliefGraph;

    fn to_mtx(g: &BeliefGraph) -> (Vec<u8>, Vec<u8>) {
        let mut nbuf = Vec::new();
        let mut ebuf = Vec::new();
        credo_io::mtx::write(g, &mut nbuf, &mut ebuf).unwrap();
        (nbuf, ebuf)
    }

    fn stream_lower(nbuf: &[u8], ebuf: &[u8], k: usize) -> ShardedExec {
        lower(|| Ok(nbuf), || Ok(ebuf), k).unwrap()
    }

    #[test]
    fn streamed_shards_equal_compiled_shards() {
        for (g, label) in [
            (
                synthetic(60, 240, &GenOptions::new(3).with_seed(7)),
                "synthetic",
            ),
            (grid(8, 9, &GenOptions::new(2).with_seed(1)), "grid"),
            (
                kronecker(6, 6, &GenOptions::new(2).with_seed(5)),
                "kronecker",
            ),
            (
                preferential_attachment(70, 3, &GenOptions::new(2).with_seed(9)),
                "pa",
            ),
            (
                synthetic(
                    40,
                    160,
                    &GenOptions::new(2)
                        .with_seed(3)
                        .with_potentials(PotentialKind::PerEdgeRandom),
                ),
                "per-edge",
            ),
        ] {
            let (nbuf, ebuf) = to_mtx(&g);
            // The resident reference comes from the same bytes, so priors
            // and potentials went through the same parse.
            let resident = credo_io::mtx::read(&nbuf[..], &ebuf[..]).unwrap();
            for k in [1usize, 2, 8] {
                let streamed = stream_lower(&nbuf, &ebuf, k);
                let compiled = ShardedExec::compile(&resident, k);
                assert_eq!(streamed.meta, compiled.meta, "{label} k={k}");
                assert_eq!(streamed.shards, compiled.shards, "{label} k={k}");
            }
        }
    }

    #[test]
    fn streamed_rejects_what_resident_rejects() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 -1 2\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n2 2 1\n1 2\n";
        let streamed = lower(|| Ok(&nodes[..]), || Ok(&edges[..]), 2).unwrap_err();
        let resident = credo_io::mtx::read(&nodes[..], &edges[..]).unwrap_err();
        assert_eq!(streamed.to_string(), resident.to_string());
    }

    #[test]
    fn duplicate_edges_stream_as_multigraph_edges() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 0.8 0.2 0.2 0.8\n2 2 2\n1 2\n1 2\n";
        let sx = lower(|| Ok(&nodes[..]), || Ok(&edges[..]), 2).unwrap();
        assert_eq!(sx.meta.total_arcs, 4);
        let resident = credo_io::mtx::read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(sx.shards, ShardedExec::compile(&resident, 2).shards);
    }
}
