//! End-to-end tests of the content-addressed plan store: roundtrips are
//! bitwise-equal to a fresh compile across every generator family and
//! shard count, a corruption corpus (truncation, byte flips, bad
//! magic/version) comes back as structured errors with a clean
//! recompile-and-repair fallback, persisted warm snapshots resume within
//! 1e-4 of a continuous run, a restarted server answers from the store
//! without rebuilding, and the `credo store` CLI maintains the cache.

use credo::graph::generators::{
    family_out, grid, kronecker, preferential_attachment, random_dag, random_tree, synthetic,
    GenOptions, PotentialKind,
};
use credo::graph::{slab_bytes, BeliefGraph, ExecGraph, ShardedExec};
use credo::serve::{Client, Request, ServeConfig, Server};
use credo::store::{structural_hash, PlanStore, SourceKey, StoreError};
use credo::{BpOptions, Dispatch, EvidenceDelta, WarmPolicy, WarmState};
use std::path::PathBuf;
use std::time::Duration;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("credo-itest-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts() -> BpOptions {
    BpOptions {
        max_iterations: 60,
        ..BpOptions::default()
    }
}

/// One graph per generator family, shared and per-edge potentials both
/// represented (the blob format stores them differently).
fn families() -> Vec<(&'static str, BeliefGraph)> {
    let o = |seed| GenOptions::new(2).with_seed(seed);
    vec![
        ("synthetic", synthetic(600, 2400, &o(1))),
        ("grid", grid(20, 20, &o(2))),
        ("kronecker", kronecker(8, 8, &o(3))),
        ("powerlaw", preferential_attachment(600, 3, &o(4))),
        ("tree", random_tree(600, &o(5))),
        ("dag", random_dag(600, 600, &o(6))),
        (
            "per-edge",
            synthetic(
                300,
                1200,
                &o(7).with_potentials(PotentialKind::PerEdgeRandom),
            ),
        ),
        ("family-out", family_out()),
    ]
}

/// Bitwise equality of every array a resident plan owns.
fn assert_plans_bitwise_equal(family: &str, fresh: &ExecGraph, loaded: &ExecGraph) {
    assert_eq!(loaded.node_offsets(), fresh.node_offsets(), "{family}");
    assert_eq!(loaded.in_offsets(), fresh.in_offsets(), "{family}");
    assert_eq!(loaded.in_arc_array(), fresh.in_arc_array(), "{family}");
    assert_eq!(loaded.out_offsets(), fresh.out_offsets(), "{family}");
    assert_eq!(loaded.out_dst_array(), fresh.out_dst_array(), "{family}");
    assert_eq!(loaded.observed(), fresh.observed(), "{family}");
    assert_eq!(
        slab_bytes(loaded.pot_pool()),
        slab_bytes(fresh.pot_pool()),
        "{family}: potential pool must be bit-identical"
    );
    assert_eq!(
        slab_bytes(loaded.priors()),
        slab_bytes(fresh.priors()),
        "{family}: priors must be bit-identical"
    );
}

fn run_plan(plan: ExecGraph) -> Vec<u32> {
    let mut warm = WarmState::from_plan(plan, 1);
    warm.run_cold("Plan Node", &opts(), &Dispatch::none(), None);
    warm.beliefs().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn resident_roundtrip_is_bitwise_across_families() {
    let store = PlanStore::open(tmp("resident")).unwrap();
    for (i, (family, mut g)) in families().into_iter().enumerate() {
        // Evidence travels in the state blob; make sure it roundtrips too.
        g.observe(3, 1);
        let key = SourceKey::from_spec(family, i as u64);
        let fresh = ExecGraph::compile(&g);
        store
            .save_plan(key, family, structural_hash(&g), &fresh)
            .unwrap();
        let (loaded, _) = store.load_plan(&key).unwrap().expect("stored plan loads");
        assert_plans_bitwise_equal(family, &fresh, &loaded);
        assert_eq!(
            run_plan(loaded),
            run_plan(fresh),
            "{family}: loaded-plan posteriors must be bitwise equal"
        );
    }
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn sharded_roundtrip_is_bitwise_across_families_and_shard_counts() {
    use credo_core::run_sharded;
    let store = PlanStore::open(tmp("sharded")).unwrap();
    for (i, (family, g)) in families().into_iter().enumerate() {
        let structural = structural_hash(&g);
        for shards in [1usize, 2, 8] {
            let key = SourceKey::from_spec(family, i as u64).with(&format!("shards={shards}"));
            let mut fresh = ShardedExec::compile(&g, shards);
            store.save_sharded(key, family, structural, &fresh).unwrap();
            let (mut loaded, m) = store
                .load_sharded(&key)
                .unwrap()
                .expect("stored plan loads");
            assert_eq!(m.shards as usize, fresh.shards.len());
            for (a, b) in loaded.shards.iter().zip(&fresh.shards) {
                assert_eq!(a.range, b.range, "{family}/{shards}");
                assert_eq!(
                    slab_bytes(&a.pot_pool),
                    slab_bytes(&b.pot_pool),
                    "{family}/{shards}: shard pools bit-identical"
                );
            }
            let (_, fresh_beliefs) = run_sharded(
                "Stream Node",
                &mut fresh,
                &opts(),
                &Dispatch::none(),
                1,
                None,
            )
            .unwrap();
            let (_, loaded_beliefs) = run_sharded(
                "Stream Node",
                &mut loaded,
                &opts(),
                &Dispatch::none(),
                1,
                None,
            )
            .unwrap();
            let fresh_bits: Vec<u32> = fresh_beliefs.iter().map(|v| v.to_bits()).collect();
            let loaded_bits: Vec<u32> = loaded_beliefs.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                loaded_bits, fresh_bits,
                "{family}/{shards}: sharded posteriors must be bitwise equal"
            );
        }
    }
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn corruption_corpus_is_structured_errors_and_recompile_repairs() {
    let store = PlanStore::open(tmp("corrupt")).unwrap();
    let g = grid(8, 8, &GenOptions::new(2).with_seed(9));
    let key = SourceKey::from_spec("corpus", 0);
    let plan = ExecGraph::compile(&g);
    let m = store
        .save_plan(key, "corpus", structural_hash(&g), &plan)
        .unwrap();
    let body = store
        .root()
        .join("objects")
        .join(format!("{}.blob", m.blobs[0]));
    let pristine = std::fs::read(&body).unwrap();

    let expect_structured = |what: &str| match store.load_plan(&key) {
        Err(StoreError::Corrupt { .. }) | Err(StoreError::Mismatch { .. }) => {}
        Err(StoreError::Io(_)) => {} // e.g. header shorter than a read
        Ok(_) => panic!("{what}: corrupted store must not load"),
    };

    // Truncation: every prefix boundary region plus a coarse sweep.
    let mut cuts: Vec<usize> = vec![0, 1, 7, 39, 40, 55, 56, 63, 64, 65, pristine.len() - 1];
    cuts.extend((0..pristine.len()).step_by(97));
    for cut in cuts {
        std::fs::write(&body, &pristine[..cut]).unwrap();
        expect_structured(&format!("truncate at {cut}"));
    }

    // Single-byte mutation sweep over the whole file.
    for at in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x5A;
        std::fs::write(&body, &bytes).unwrap();
        expect_structured(&format!("flip byte {at}"));
    }

    // Version and magic mismatches specifically report Mismatch.
    let mut bad_version = pristine.clone();
    bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&body, &bad_version).unwrap();
    assert!(
        matches!(store.load_plan(&key), Err(StoreError::Mismatch { .. })),
        "future version must be a Mismatch"
    );
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&body, &bad_magic).unwrap();
    assert!(
        matches!(store.load_plan(&key), Err(StoreError::Mismatch { .. })),
        "wrong magic must be a Mismatch"
    );

    // The fallback path: recompile and re-save repairs the store in
    // place (dedup must not trust the damaged same-named file).
    let repaired = store
        .save_plan(key, "corpus", structural_hash(&g), &plan)
        .unwrap();
    assert_eq!(repaired.blobs, m.blobs);
    let (loaded, _) = store
        .load_plan(&key)
        .unwrap()
        .expect("repaired store loads");
    assert_plans_bitwise_equal("repaired", &plan, &loaded);
    assert!(store.verify().unwrap().clean());
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn warm_snapshot_resume_matches_continuous_run() {
    let store = PlanStore::open(tmp("warm-resume")).unwrap();
    let g = synthetic(
        1500,
        6000,
        &GenOptions::new(2)
            .with_seed(17)
            .with_potentials(PotentialKind::SharedRandom),
    );
    let opts = BpOptions {
        threshold: 1e-6,
        queue_threshold: 1e-6,
        max_iterations: 2000,
        ..BpOptions::default()
    };
    let policy = WarmPolicy::default();
    let trace = Dispatch::none();
    let base = EvidenceDelta::observing(&[(5, 1), (400, 0), (900, 1), (1300, 0)]);
    let flip = EvidenceDelta::observing(&[(5, 0)]);

    // Continuous: base evidence, then a one-node flip, never restarted.
    let mut continuous = WarmState::new(g.clone(), 1);
    continuous
        .run_from("itest", &base, &opts, &policy, &trace)
        .unwrap();
    continuous
        .run_from("itest", &flip, &opts, &policy, &trace)
        .unwrap();

    // Persisted: same base run, snapshotted to the store, then "restart"
    // — a plan-only state mmap-loaded back, snapshot restored — and the
    // same flip applied.
    let key = SourceKey::from_spec("warm", 17);
    let mut first = WarmState::new(g.clone(), 1);
    first
        .run_from("itest", &base, &opts, &policy, &trace)
        .unwrap();
    let manifest = store
        .save_plan(key, "warm", structural_hash(&g), first.plan())
        .unwrap();
    let root = manifest.root_hash().unwrap();
    store.save_warm(root, "base", &first.snapshot()).unwrap();
    drop(first);

    let (plan, _) = store.load_plan(&key).unwrap().expect("plan stored");
    let mut resumed = WarmState::from_plan(plan, 1);
    let snap = store
        .load_warm_latest(root)
        .unwrap()
        .expect("snapshot stored");
    resumed.restore(&snap).unwrap();
    assert_eq!(resumed.evidence().len(), 4, "overlay restored");
    let run = resumed
        .run_from("itest", &flip, &opts, &policy, &trace)
        .unwrap();
    assert!(run.warm, "restored snapshot must take the warm path");

    let worst = continuous
        .beliefs()
        .iter()
        .zip(resumed.beliefs())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0f64, f64::max);
    assert!(
        worst <= 1e-4,
        "resumed posteriors diverge from continuous run: {worst}"
    );
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn serve_restart_resumes_from_store_without_rebuilding() {
    let dir = tmp("serve-restart");
    let build = || {
        Ok::<BeliefGraph, String>(synthetic(
            800,
            3200,
            &GenOptions::new(2)
                .with_seed(21)
                .with_potentials(PotentialKind::SharedRandom),
        ))
    };
    let key = SourceKey::from_spec("itest-restart", 21);
    let evidence = [(5u32, 1u32), (100, 0), (321, 1)];
    let cfg = ServeConfig::default();

    let ask = |server: &Server| -> Vec<(u32, Vec<f32>)> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(move || server.serve_tcp(listener));
            let mut client = Client::connect_retry(&addr, Duration::from_secs(10)).unwrap();
            let mut req = Request::infer("g0", &evidence);
            req.nodes = vec![1, 2, 3, 700];
            let resp = client.request(&req).unwrap();
            assert!(resp.ok, "{}", resp.error);
            assert!(client.shutdown().unwrap().ok);
            acceptor.join().unwrap().unwrap();
            resp.posteriors
        })
    };

    // First life: store miss, compile, serve one query, snapshot at
    // shutdown.
    let server = Server::new(cfg, Dispatch::none());
    server.set_store(&dir).unwrap();
    server
        .add_graph_cached("g0", key, "itest-restart", build)
        .unwrap();
    let first = ask(&server);
    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.store_misses, 1);
    assert_eq!(m.store_hits, 0);
    assert_eq!(m.snapshots_saved, 1, "shutdown must persist a snapshot");

    // Second life: the plan comes back mmap'd, the snapshot resumes, the
    // build closure must never run.
    let server2 = Server::new(cfg, Dispatch::none());
    server2.set_store(&dir).unwrap();
    server2
        .add_graph_cached("g0", key, "itest-restart", || {
            Err::<BeliefGraph, String>("restart must not rebuild".into())
        })
        .unwrap();
    let m2 = server2.metrics();
    assert_eq!(m2.store_hits, 1);
    assert_eq!(m2.store_misses, 0);
    assert_eq!(m2.warm_resumes, 1, "latest snapshot must be restored");
    let second = ask(&server2);
    server2.shutdown();

    assert_eq!(first.len(), second.len());
    for ((v1, p1), (v2, p2)) in first.iter().zip(&second) {
        assert_eq!(v1, v2);
        for (a, b) in p1.iter().zip(p2) {
            assert!(
                (a - b).abs() <= 1e-4,
                "restarted posteriors diverge at node {v1}: {a} vs {b}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_store_roundtrip_gc_and_verify() {
    let exe = env!("CARGO_BIN_EXE_credo");
    let dir = tmp("cli");
    let dir_s = dir.to_str().unwrap().to_string();
    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn credo");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string()
                + &String::from_utf8_lossy(&out.stderr),
        )
    };
    let out_dir = dir.join("prof-out");
    let out_s = out_dir.to_str().unwrap().to_string();
    let prof = [
        "prof",
        "300x1200",
        "--store",
        &dir_s,
        "--out",
        &out_s,
        "--quiet",
        "--gpu",
        "none",
        "--cpu",
        "seq-node",
        "--max-iters",
        "30",
    ];

    let (ok, out) = run(&prof);
    assert!(ok, "first prof run failed:\n{out}");
    assert!(out.contains("store: miss"), "first run is a miss:\n{out}");
    assert!(out.contains("Plan Node"), "plan line reported:\n{out}");

    let (ok, out) = run(&prof);
    assert!(ok, "second prof run failed:\n{out}");
    assert!(out.contains("store: hit"), "second run is a hit:\n{out}");

    let (ok, out) = run(&["store", "ls", "--store", &dir_s]);
    assert!(ok, "ls failed:\n{out}");
    assert!(
        out.contains("300x1200") && out.contains("1 plan(s)"),
        "{out}"
    );

    let (ok, out) = run(&["store", "verify", "--store", &dir_s]);
    assert!(ok, "verify on a clean store must pass:\n{out}");

    // Flip a byte in some blob; verify must fail and say which file.
    let objects = dir.join("objects");
    let blob = std::fs::read_dir(&objects)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "blob"))
        .expect("a stored blob");
    let mut bytes = std::fs::read(&blob).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&blob, &bytes).unwrap();
    let (ok, out) = run(&["store", "verify", "--store", &dir_s]);
    assert!(!ok, "verify must fail on a corrupt store:\n{out}");
    assert!(out.contains("corrupt blob"), "{out}");

    // prof falls back to recompile, repairs the blob, and verify is
    // clean again.
    let (ok, out) = run(&prof);
    assert!(ok, "prof must recover from a corrupt store:\n{out}");
    assert!(out.contains("compiled"), "fallback recompiles:\n{out}");
    let (ok, out) = run(&["store", "verify", "--store", &dir_s]);
    assert!(ok, "re-save must repair the store:\n{out}");

    // gc without a budget is an error; with budget 0 it evicts the plan.
    let (ok, _) = run(&["store", "gc", "--store", &dir_s]);
    assert!(!ok, "gc requires --budget");
    let (ok, out) = run(&["store", "gc", "--store", &dir_s, "--budget", "0"]);
    assert!(ok, "gc failed:\n{out}");
    assert!(out.contains("evicted 1 plan(s)"), "{out}");
    let (ok, out) = run(&["store", "ls", "--store", &dir_s]);
    assert!(ok && out.contains("0 plan(s)"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}
