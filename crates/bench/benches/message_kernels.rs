//! Microbenchmarks for the packed message microkernels: the generic
//! scalar kernel vs the fully-unrolled cardinality-2/4 fast paths vs the
//! `f32x8`-blocked wide kernel, plus the packed combine primitives.
//!
//! CI runs this with `CRITERION_JSON=BENCH_kernel_microbench.json` so the
//! per-kernel best-of-N times land next to the engine-level artefacts.

use credo_core::kernels::{
    message_card2, message_card4, message_generic, message_packed, message_wide, mul_assign_packed,
    normalize_packed,
};
use credo_graph::JointMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn potential(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| 0.1 + (i % 7) as f32 * 0.11)
        .collect()
}

fn belief(card: usize) -> Vec<f32> {
    (0..card).map(|i| 0.2 + (i % 3) as f32 * 0.25).collect()
}

fn bench_card2(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_card2");
    let pot = potential(2, 2);
    let src = belief(2);
    let mut out = vec![0.0f32; 2];
    group.bench_function("scalar_generic", |b| {
        b.iter(|| message_generic(black_box(&src), black_box(&pot), black_box(&mut out)))
    });
    group.bench_function("unrolled", |b| {
        b.iter(|| message_card2(black_box(&src), black_box(&pot), black_box(&mut out)))
    });
    let m = JointMatrix::from_rows(2, 2, pot.clone());
    let bel = credo_graph::Belief::from_slice(&src);
    group.bench_function("aos_jointmatrix", |b| b.iter(|| black_box(m.message(&bel))));
    group.finish();
}

fn bench_card4(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_card4");
    let pot = potential(4, 4);
    let src = belief(4);
    let mut out = vec![0.0f32; 4];
    group.bench_function("scalar_generic", |b| {
        b.iter(|| message_generic(black_box(&src), black_box(&pot), black_box(&mut out)))
    });
    group.bench_function("unrolled", |b| {
        b.iter(|| message_card4(black_box(&src), black_box(&pot), black_box(&mut out)))
    });
    group.finish();
}

fn bench_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_wide");
    for &k in &[8usize, 16, 32] {
        let pot = potential(k, k);
        let src = belief(k);
        let mut out = vec![0.0f32; k];
        group.bench_with_input(BenchmarkId::new("scalar_generic", k), &k, |b, _| {
            b.iter(|| message_generic(black_box(&src), black_box(&pot), black_box(&mut out)))
        });
        group.bench_with_input(BenchmarkId::new("f32x8", k), &k, |b, _| {
            b.iter(|| message_wide(black_box(&src), black_box(&pot), black_box(&mut out)))
        });
    }
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    // The dispatcher the hot loop actually calls, across the shapes the
    // fast paths specialize on.
    let mut group = c.benchmark_group("message_packed_dispatch");
    for &k in &[2usize, 4, 8, 32] {
        let pot = potential(k, k);
        let src = belief(k);
        let mut out = vec![0.0f32; k];
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| message_packed(black_box(&src), black_box(&pot), black_box(&mut out)))
        });
    }
    group.finish();
}

fn bench_combine_packed(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_packed");
    for &k in &[2usize, 8, 32] {
        let msg = belief(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut acc = belief(k);
                for _ in 0..8 {
                    mul_assign_packed(black_box(&mut acc), black_box(&msg));
                }
                black_box(normalize_packed(black_box(&mut acc)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_card2,
    bench_card4,
    bench_wide,
    bench_dispatch,
    bench_combine_packed
);
criterion_main!(benches);
