/root/repo/target/release/deps/credo_bench-570d3d7800e8a6c9.d: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libcredo_bench-570d3d7800e8a6c9.rlib: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libcredo_bench-570d3d7800e8a6c9.rmeta: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/dataset.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/suite.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
