//! Offline stand-in for `serde_json`, built on the `serde` stand-in's
//! owned [`Value`] tree. Implements the calls this workspace makes:
//! [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::{DeError, Deserialize, Serialize};
// Re-exported so callers can name the parse result the way they would
// with the real `serde_json::Value`.
pub use serde::Value;

/// JSON error (serialization or parse), mirroring `serde_json::Error`'s
/// role as a `std::error::Error`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value).map_err(Error::from)
}

// ---- writer ----

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, level, '[', ']', |out, v, l| {
                write_value(out, v, indent, l)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            level,
            '{',
            '}',
            |out, (k, v), l| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, l);
            },
        ),
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // serde_json always distinguishes floats; keep "1.0" over "1".
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; our reports never
        // contain them, but degrade to null rather than invalid JSON.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

// ---- reader ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    out.push_str(
                        core::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec_of_tuples() {
        let v: Vec<(String, f64)> = vec![("C Node".into(), 0.125), ("CUDA Edge".into(), 2.0)];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_shape() {
        let json = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let input = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null, "e": true}}"#;
        let v = parse_value(input).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Int(-3)])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap(),
            &Value::Str("x\ny".to_string())
        );
    }

    #[test]
    fn float_keeps_decimal_point() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }
}
