//! Persistent-pool per-edge engine ("Par Edge").

use super::{emit_pool_metrics, pool_threads, range_chunks, MsgCache, ParWorkQueue, WorkerPool};
use crate::convergence::ConvergenceTracker;
use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::openmp::SharedSlice;
use crate::opts::BpOptions;
use crate::stats::{BpStats, IterationStats};
use credo_graph::{Belief, BeliefGraph};
use std::time::Instant;
use tracing::Dispatch;

/// One worker's output for an iteration: for each destination it touched
/// (identified by its position in the active list, ascending within the
/// run), the per-state sum of log-messages over that worker's share of the
/// destination's in-arcs.
#[derive(Debug, Default)]
struct RunBuf {
    /// Active-list positions, strictly ascending within the run.
    pos: Vec<u32>,
    /// `pos.len() * card` log-sums, grouped per position.
    sums: Vec<f32>,
}

/// CPU-parallel per-edge loopy BP without atomics.
///
/// The paper's edge paradigm (§3.3) combines each arc's contribution into
/// its destination with an atomic float multiply; [`crate::openmp::OpenMpEdgeEngine`]
/// reproduces that CAS loop and counts its retries. This engine removes the
/// contention instead of paying it: each pool worker streams a contiguous
/// chunk of the active arc list (grouped by destination) and accumulates
/// **log-space partial products** in its own buffer; a marginalize pass
/// then merges the per-worker runs for each destination in worker order —
/// a deterministic reduction, so [`BpStats::atomic_retries`] is always 0
/// and results are reproducible for a fixed thread count.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParEdgeEngine;

impl BpEngine for ParEdgeEngine {
    fn name(&self) -> &'static str {
        "Par Edge"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Edge
    }

    fn platform(&self) -> Platform {
        Platform::CpuParallel
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let opts = &opts.normalized();
        if opts.exec_plan {
            return crate::plan::run_edge_plan(
                self.name(),
                graph,
                opts,
                trace,
                pool_threads(opts.threads),
            );
        }
        let card = graph
            .uniform_cardinality()
            .ok_or(EngineError::NonUniformCardinality)?;
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let n = graph.num_nodes();
        let threads = pool_threads(opts.threads);
        let pool = WorkerPool::new(threads);
        let mut tracker = ConvergenceTracker::new(opts);
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();

        let mut scratch: Vec<Belief> = graph.beliefs().to_vec();
        let mut diffs: Vec<f32> = vec![0.0; n];
        let mut cache = MsgCache::new(graph);
        let mut runs: Vec<RunBuf> = (0..threads).map(|_| RunBuf::default()).collect();

        let full_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        // The arc stream: every in-arc of every active node, grouped by
        // destination in active-list order. Entries carry the arc id and
        // the destination's active-list position.
        let mut stream_arcs: Vec<u32> = Vec::new();
        let mut stream_pos: Vec<u32> = Vec::new();
        fn build_stream(g: &BeliefGraph, active: &[u32], arcs: &mut Vec<u32>, pos: &mut Vec<u32>) {
            arcs.clear();
            pos.clear();
            for (p, &v) in active.iter().enumerate() {
                let ins = g.in_arcs(v);
                arcs.extend_from_slice(ins);
                pos.resize(pos.len() + ins.len(), p as u32);
            }
        }
        build_stream(graph, &full_nodes, &mut stream_arcs, &mut stream_pos);

        let mut queue = opts
            .work_queue
            .then(|| ParWorkQueue::new(n, threads, |v| !graph.observed()[v]));

        loop {
            let iter_start = Instant::now();
            let active_len = match &queue {
                Some(q) => q.len(),
                None => full_nodes.len(),
            };
            if active_len == 0 {
                tracker.mark_converged();
                break;
            }
            let queue_depth = active_len as u64;
            let iter_span = trace.span(
                "iteration",
                &[
                    ("iter", (per_iteration.len() as u64).into()),
                    ("queue_depth", queue_depth.into()),
                    ("threads", threads.into()),
                ],
            );
            let msgs_before = message_updates;
            cache.refresh(graph, &pool, active_len);

            let sum: f32 = {
                let (active, mut qworkers): (&[u32], Vec<_>) = match &mut queue {
                    Some(q) => {
                        let (a, w) = q.begin_iteration();
                        (a, w)
                    }
                    None => (&full_nodes, Vec::new()),
                };
                let use_queue = !qworkers.is_empty();
                if use_queue {
                    build_stream(graph, active, &mut stream_arcs, &mut stream_pos);
                }

                // Region 1: stream arcs into per-worker log-sum runs. Chunk
                // boundaries may split one destination's arc group across
                // two workers; both then emit an entry for that position
                // and the merge below adds the partial log-sums.
                {
                    let g = &*graph;
                    let prev = g.beliefs();
                    let cache_ref = &cache;
                    let arc_chunks = range_chunks(stream_arcs.len(), threads);
                    let (arcs_ref, pos_ref) = (&stream_arcs, &stream_pos);
                    let runs_shared = SharedSlice::new(&mut runs);
                    let chunks_ref = &arc_chunks;
                    pool.broadcast(&|i| {
                        // SAFETY: one run buffer per region index.
                        let run = unsafe { &mut *runs_shared.ptr_at(i) };
                        run.pos.clear();
                        run.sums.clear();
                        let Some(&(lo, hi)) = chunks_ref.get(i) else {
                            return;
                        };
                        let mut cur = u32::MAX;
                        for k in lo..hi {
                            let p = pos_ref[k];
                            if p != cur {
                                run.pos.push(p);
                                run.sums.resize(run.sums.len() + card, 0.0);
                                cur = p;
                            }
                            let msg = cache_ref.message(g, arcs_ref[k], prev);
                            let base = run.sums.len() - card;
                            for st in 0..card {
                                run.sums[base + st] += msg.get(st).ln();
                            }
                        }
                    });
                }
                message_updates += stream_arcs.len() as u64;

                // Region 2: marginalize. Each worker owns a contiguous
                // range of active-list positions; per-worker runs keep
                // positions ascending, so a cursor per run walks each run
                // exactly once. Runs are merged in worker order — a fixed,
                // deterministic reduction tree.
                {
                    let g = &*graph;
                    let prev = g.beliefs();
                    let runs_ref = &runs;
                    let node_chunks = range_chunks(active.len(), threads);
                    let scratch_shared = SharedSlice::new(&mut scratch);
                    let diffs_shared = SharedSlice::new(&mut diffs);
                    let qw_shared = SharedSlice::new(&mut qworkers);
                    let (qt, wake) = (opts.queue_threshold, opts.wake_neighbors);
                    let (active_ref, chunks_ref) = (active, &node_chunks);
                    pool.broadcast(&|i| {
                        let Some(&(lo, hi)) = chunks_ref.get(i) else {
                            return;
                        };
                        let mut cursors: Vec<usize> = runs_ref
                            .iter()
                            .map(|r| r.pos.partition_point(|&p| (p as usize) < lo))
                            .collect();
                        let mut acc = vec![0.0f32; card];
                        for (p, &v) in active_ref.iter().enumerate().take(hi).skip(lo) {
                            acc.fill(0.0);
                            for (r, run) in runs_ref.iter().enumerate() {
                                let c = cursors[r];
                                if run.pos.get(c) == Some(&(p as u32)) {
                                    let base = c * card;
                                    for (st, a) in acc.iter_mut().enumerate() {
                                        *a += run.sums[base + st];
                                    }
                                    cursors[r] = c + 1;
                                }
                            }
                            // Log-sum-exp against the max for stability; a
                            // node whose every state hit ln(0) degenerates
                            // to the all-zero product, exactly like the
                            // normal-space engines.
                            let mut max = f32::NEG_INFINITY;
                            for &a in &acc {
                                max = max.max(a);
                            }
                            if !max.is_finite() {
                                max = 0.0;
                            }
                            let prior = &g.priors()[v as usize];
                            let mut new = Belief::zeros(card);
                            for (st, &a) in acc.iter().enumerate() {
                                new.set(st, prior.get(st) * (a - max).exp());
                            }
                            new.normalize();
                            let diff = new.l1_diff(&prev[v as usize]);
                            // SAFETY: active node ids are unique; one
                            // writer per slot.
                            unsafe { scratch_shared.write(v as usize, new) };
                            unsafe { diffs_shared.write(v as usize, diff) };
                            if use_queue && diff >= qt {
                                // SAFETY: handle `i` is owned by this index.
                                let qw = unsafe { &mut *qw_shared.ptr_at(i) };
                                qw.push(v);
                                if wake {
                                    for &a in g.out_arcs(v) {
                                        qw.push(g.arc(a).dst);
                                    }
                                }
                            }
                        }
                    });
                }
                node_updates += active.len() as u64;

                // Region 3: publish scratch into the belief array.
                {
                    let beliefs = graph.beliefs_mut();
                    let shared = SharedSlice::new(beliefs);
                    let scratch_ref = &scratch;
                    let node_chunks = range_chunks(active.len(), threads);
                    let (active_ref, chunks_ref) = (active, &node_chunks);
                    pool.broadcast(&|i| {
                        let Some(&(lo, hi)) = chunks_ref.get(i) else {
                            return;
                        };
                        for &v in &active_ref[lo..hi] {
                            // SAFETY: unique indices per chunk.
                            unsafe { shared.write(v as usize, scratch_ref[v as usize]) };
                        }
                    });
                }

                // Deterministic ascending-order reduction of the global sum
                // (residual mode permutes `active`; re-sort for the sum).
                if opts.residual_priority {
                    let mut ascending = active.to_vec();
                    ascending.sort_unstable();
                    ascending.iter().map(|&v| diffs[v as usize]).sum()
                } else {
                    active.iter().map(|&v| diffs[v as usize]).sum()
                }
            };

            if let Some(q) = &mut queue {
                if opts.residual_priority {
                    q.advance_by_residual(&diffs);
                } else {
                    q.advance();
                }
            }

            if trace.enabled() {
                iter_span.record(&[("delta", sum.into())]);
                trace.counter("queue_depth", queue_depth as f64);
                if let Some(q) = &queue {
                    trace.counter("queue_repopulated", q.len() as f64);
                }
            }
            drop(iter_span);
            per_iteration.push(IterationStats {
                delta: sum,
                node_updates: queue_depth,
                message_updates: message_updates - msgs_before,
                queue_depth,
                elapsed: iter_start.elapsed(),
            });

            if !tracker.record(sum) {
                break;
            }
        }

        let elapsed = start.elapsed();
        if trace.enabled() {
            emit_pool_metrics(trace, &pool, queue.as_ref(), elapsed);
            run_span.record(&[
                ("iterations", tracker.iterations().into()),
                ("converged", tracker.converged().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            final_delta: if tracker.last_sum().is_finite() {
                tracker.last_sum()
            } else {
                0.0
            },
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqEdgeEngine;
    use credo_graph::generators::{kronecker, synthetic, GenOptions, PotentialKind};
    use credo_graph::{GraphBuilder, JointMatrix};

    #[test]
    fn matches_sequential_edge_engine() {
        for threads in [1usize, 2, 4] {
            let mut g1 = synthetic(200, 800, &GenOptions::new(3).with_seed(23));
            let mut g2 = g1.clone();
            SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
            let stats = ParEdgeEngine
                .run(&mut g2, &BpOptions::default().with_threads(threads))
                .unwrap();
            assert_eq!(stats.atomic_retries, 0);
            for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
                assert!(a.linf_diff(b) < 1e-3, "threads={threads}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_thread_count() {
        let mut g1 = synthetic(150, 600, &GenOptions::new(3).with_seed(41));
        let mut g2 = g1.clone();
        let opts = BpOptions::default().with_threads(4);
        let s1 = ParEdgeEngine.run(&mut g1, &opts).unwrap();
        let s2 = ParEdgeEngine.run(&mut g2, &opts).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(g1.beliefs(), g2.beliefs());
    }

    #[test]
    fn matches_on_hub_graphs() {
        let mut g1 = kronecker(7, 8, &GenOptions::new(2).with_seed(9));
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        ParEdgeEngine
            .run(&mut g2, &BpOptions::default().with_threads(4))
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn queue_mode_matches_plain_mode() {
        let mut g1 = synthetic(150, 450, &GenOptions::new(2).with_seed(8));
        let mut g2 = g1.clone();
        ParEdgeEngine
            .run(&mut g1, &BpOptions::default().with_threads(2))
            .unwrap();
        let mut qopts = BpOptions::with_work_queue();
        qopts.threads = 2;
        ParEdgeEngine.run(&mut g2, &qopts).unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 5e-3);
        }
    }

    #[test]
    fn residual_priority_changes_order_not_results() {
        let mut g1 = synthetic(150, 450, &GenOptions::new(2).with_seed(8));
        let mut g2 = g1.clone();
        let mut plain = BpOptions::with_work_queue();
        plain.threads = 2;
        let s1 = ParEdgeEngine.run(&mut g1, &plain).unwrap();
        let residual = BpOptions::default()
            .with_residual_priority()
            .with_threads(2);
        let s2 = ParEdgeEngine.run(&mut g2, &residual).unwrap();
        // Reordering the arc stream moves chunk boundaries, which regroups
        // the log-sum additions — so allow last-ulp drift, nothing more.
        assert!(s1.converged && s2.converged);
        assert!(s1.iterations.abs_diff(s2.iterations) <= 1);
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-4);
        }
    }

    #[test]
    fn per_edge_potentials_supported() {
        let opts = GenOptions::new(2)
            .with_seed(31)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let mut g1 = synthetic(60, 180, &opts);
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        ParEdgeEngine
            .run(&mut g2, &BpOptions::default().with_threads(2))
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn rejects_non_uniform_cardinality() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(3));
        b.add_directed_edge_with(n0, n1, JointMatrix::uniform(2, 3));
        let mut g = b.build().unwrap();
        let err = ParEdgeEngine
            .run(&mut g, &BpOptions::default())
            .unwrap_err();
        assert_eq!(err, EngineError::NonUniformCardinality);
    }
}
