/root/repo/target/release/deps/exp_shared_potential-76c22a40d497c9f2.d: crates/bench/src/bin/exp_shared_potential.rs Cargo.toml

/root/repo/target/release/deps/libexp_shared_potential-76c22a40d497c9f2.rmeta: crates/bench/src/bin/exp_shared_potential.rs Cargo.toml

crates/bench/src/bin/exp_shared_potential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
