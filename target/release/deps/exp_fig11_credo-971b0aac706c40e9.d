/root/repo/target/release/deps/exp_fig11_credo-971b0aac706c40e9.d: crates/bench/src/bin/exp_fig11_credo.rs

/root/repo/target/release/deps/exp_fig11_credo-971b0aac706c40e9: crates/bench/src/bin/exp_fig11_credo.rs

crates/bench/src/bin/exp_fig11_credo.rs:
