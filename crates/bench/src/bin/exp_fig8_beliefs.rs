//! Figure 8 — distribution of CUDA-vs-C speedups by belief count.
//!
//! Paper: "the speedup for the Node paradigm decreases beyond … three
//! beliefs. Yet for Edges, it consistently increases with the number of
//! beliefs" — at 32 beliefs Node averages ~29x on K21/LJ/PO while Edge
//! reaches ~10x (from ~3.4x at low belief counts).

use credo::{BpOptions, Implementation};
use credo_bench::report::{fmt_speedup, save_json, Table};
use credo_bench::runner::run_all_implementations;
use credo_bench::scale_from_args;
use credo_bench::suite::bold_subset;
use credo_gpusim::PASCAL_GTX1070;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    beliefs: usize,
    edge_speedup: f64,
    node_speedup: f64,
}

fn main() {
    let scale = scale_from_args();
    let belief_sweep = [2usize, 3, 8, 16, 32];
    let prog = credo_bench::progress_from_args();
    credo_bench::progress(
        &prog,
        &format!("Fig 8: CUDA speedup vs C by belief count (scale: {scale:?})"),
    );
    let opts = credo_bench::apply_max_iters(BpOptions::with_work_queue());

    let mut rows: Vec<Row> = Vec::new();
    for spec in bold_subset() {
        for &k in &belief_sweep {
            let mut g = spec.generate(scale, k);
            let results = run_all_implementations(&mut g, &opts, PASCAL_GTX1070);
            let secs = |which: Implementation| {
                results
                    .iter()
                    .find(|(i, _)| *i == which)
                    .map(|(_, s)| s.reported_time.as_secs_f64())
            };
            if let (Some(ce), Some(cn), Some(ge), Some(gn)) = (
                secs(Implementation::CEdge),
                secs(Implementation::CNode),
                secs(Implementation::CudaEdge),
                secs(Implementation::CudaNode),
            ) {
                rows.push(Row {
                    graph: spec.abbrev.to_string(),
                    beliefs: k,
                    edge_speedup: ce / ge,
                    node_speedup: cn / gn,
                });
            }
        }
    }

    // The figure's essence: the speedup distribution per belief count.
    let mut table = Table::new(&[
        "beliefs",
        "Edge p25",
        "Edge median",
        "Edge p75",
        "Node p25",
        "Node median",
        "Node p75",
    ]);
    let mut summary = Vec::new();
    for &k in &belief_sweep {
        let mut edge: Vec<f64> = rows
            .iter()
            .filter(|r| r.beliefs == k)
            .map(|r| r.edge_speedup)
            .collect();
        let mut node: Vec<f64> = rows
            .iter()
            .filter(|r| r.beliefs == k)
            .map(|r| r.node_speedup)
            .collect();
        edge.sort_by(|a, b| a.partial_cmp(b).unwrap());
        node.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
        if edge.is_empty() {
            continue;
        }
        table.row(&[
            k.to_string(),
            fmt_speedup(q(&edge, 0.25)),
            fmt_speedup(q(&edge, 0.5)),
            fmt_speedup(q(&edge, 0.75)),
            fmt_speedup(q(&node, 0.25)),
            fmt_speedup(q(&node, 0.5)),
            fmt_speedup(q(&node, 0.75)),
        ]);
        summary.push((k, q(&edge, 0.5), q(&node, 0.5)));
    }
    table.print();

    println!("\nShape check (paper: Edge median rises with beliefs; Node peaks near 3):");
    for (k, e, n) in &summary {
        println!("  k={k:<3} Edge {e:>8.2}x   Node {n:>8.2}x");
    }
    if let Ok(p) = save_json("fig8_beliefs", &rows) {
        println!("JSON: {}", p.display());
    }
}
