/root/repo/target/release/deps/bp_kernels-8f3f0814ad760703.d: crates/bench/benches/bp_kernels.rs Cargo.toml

/root/repo/target/release/deps/libbp_kernels-8f3f0814ad760703.rmeta: crates/bench/benches/bp_kernels.rs Cargo.toml

crates/bench/benches/bp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
