/root/repo/target/debug/deps/exp_fig9_workqueue-85c3e770782339c2.d: crates/bench/src/bin/exp_fig9_workqueue.rs

/root/repo/target/debug/deps/exp_fig9_workqueue-85c3e770782339c2: crates/bench/src/bin/exp_fig9_workqueue.rs

crates/bench/src/bin/exp_fig9_workqueue.rs:
