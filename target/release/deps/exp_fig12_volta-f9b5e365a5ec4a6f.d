/root/repo/target/release/deps/exp_fig12_volta-f9b5e365a5ec4a6f.d: crates/bench/src/bin/exp_fig12_volta.rs Cargo.toml

/root/repo/target/release/deps/libexp_fig12_volta-f9b5e365a5ec4a6f.rmeta: crates/bench/src/bin/exp_fig12_volta.rs Cargo.toml

crates/bench/src/bin/exp_fig12_volta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
