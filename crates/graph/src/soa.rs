//! Struct-of-arrays belief storage — the layout §3.4 evaluates *against*.
//!
//! "With the SoA design, we have large, flattened, parallel-indexed arrays
//! consisting for the probabilities and dimensions." Credo ultimately
//! rejects this layout (the AoS [`crate::Belief`] records have ~56% fewer
//! data-cache accesses under cachegrind), but it is kept here so the layout
//! experiment (`exp_aos_soa`) can reproduce that comparison with the cache
//! simulator.

use crate::beliefs::Belief;

/// Flattened belief storage: one probabilities array, one offsets array and
/// one dimensions array, indexed in parallel by node id.
#[derive(Clone, Debug, PartialEq)]
pub struct SoaBeliefs {
    probs: Vec<f32>,
    offsets: Vec<usize>,
    dims: Vec<u32>,
}

impl SoaBeliefs {
    /// Converts an AoS belief array into the flattened layout.
    pub fn from_aos(beliefs: &[Belief]) -> Self {
        let total: usize = beliefs.iter().map(Belief::len).sum();
        let mut probs = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(beliefs.len() + 1);
        let mut dims = Vec::with_capacity(beliefs.len());
        let mut off = 0usize;
        for b in beliefs {
            offsets.push(off);
            dims.push(b.len() as u32);
            probs.extend_from_slice(b.as_slice());
            off += b.len();
        }
        offsets.push(off);
        SoaBeliefs {
            probs,
            offsets,
            dims,
        }
    }

    /// Converts back to AoS records.
    pub fn to_aos(&self) -> Vec<Belief> {
        (0..self.len())
            .map(|i| Belief::from_slice(self.node(i)))
            .collect()
    }

    /// Number of nodes stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when no nodes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Cardinality of `node`.
    #[inline]
    pub fn dim(&self, node: usize) -> usize {
        self.dims[node] as usize
    }

    /// The probabilities of `node`.
    #[inline]
    pub fn node(&self, node: usize) -> &[f32] {
        &self.probs[self.offsets[node]..self.offsets[node + 1]]
    }

    /// Mutable probabilities of `node`.
    #[inline]
    pub fn node_mut(&mut self, node: usize) -> &mut [f32] {
        let (s, e) = (self.offsets[node], self.offsets[node + 1]);
        &mut self.probs[s..e]
    }

    /// Byte offset (within a virtual allocation starting at 0) of
    /// `probs[node][state]` — used to synthesize cache-simulator traces.
    /// Reading a probability in this layout also touches the offsets and
    /// dims arrays; see [`SoaBeliefs::trace_read`].
    #[inline]
    pub fn prob_address(&self, node: usize, state: usize) -> u64 {
        ((self.offsets[node] + state) * std::mem::size_of::<f32>()) as u64
    }

    /// The sequence of virtual addresses a read of `node`'s full belief
    /// touches under this layout: both offset-table entries (slicing needs
    /// the start *and* the end bound), the dims entry, then each
    /// probability. Address spaces: offsets at `OFFSETS_BASE`, dims at
    /// `DIMS_BASE`, probabilities at 0.
    pub fn trace_read(&self, node: usize, out: &mut Vec<u64>) {
        const OFFSETS_BASE: u64 = 1 << 40;
        const DIMS_BASE: u64 = 1 << 41;
        out.push(OFFSETS_BASE + (node * std::mem::size_of::<usize>()) as u64);
        out.push(OFFSETS_BASE + ((node + 1) * std::mem::size_of::<usize>()) as u64);
        out.push(DIMS_BASE + (node * std::mem::size_of::<u32>()) as u64);
        for s in 0..self.dim(node) {
            out.push(self.prob_address(node, s));
        }
    }

    /// Total bytes held.
    pub fn memory_bytes(&self) -> usize {
        self.probs.len() * std::mem::size_of::<f32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.dims.len() * std::mem::size_of::<u32>()
    }
}

/// Trace helper for the AoS layout: the addresses a read of `node`'s belief
/// touches when beliefs are `Vec<Belief>` (one cache-resident record per
/// node: dims and probabilities co-located).
pub fn aos_trace_read(node: usize, cardinality: usize, out: &mut Vec<u64>) {
    let record = std::mem::size_of::<Belief>() as u64;
    let base = node as u64 * record;
    // len field + the probabilities, all inside one record.
    out.push(base);
    for s in 0..cardinality {
        out.push(base + 4 + (s * std::mem::size_of::<f32>()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Belief> {
        vec![
            Belief::from_slice(&[0.25, 0.75]),
            Belief::from_slice(&[0.1, 0.2, 0.7]),
            Belief::from_slice(&[1.0]),
        ]
    }

    #[test]
    fn roundtrip_aos_soa_aos() {
        let aos = sample();
        let soa = SoaBeliefs::from_aos(&aos);
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.dim(1), 3);
        assert_eq!(soa.node(0), &[0.25, 0.75]);
        assert_eq!(soa.to_aos(), aos);
    }

    #[test]
    fn node_mut_writes_through() {
        let mut soa = SoaBeliefs::from_aos(&sample());
        soa.node_mut(1)[0] = 0.9;
        assert_eq!(soa.node(1)[0], 0.9);
    }

    #[test]
    fn prob_addresses_are_contiguous_within_node() {
        let soa = SoaBeliefs::from_aos(&sample());
        assert_eq!(soa.prob_address(0, 0), 0);
        assert_eq!(soa.prob_address(0, 1), 4);
        assert_eq!(soa.prob_address(1, 0), 8);
    }

    #[test]
    fn soa_trace_touches_three_arrays() {
        let soa = SoaBeliefs::from_aos(&sample());
        let mut t = Vec::new();
        soa.trace_read(1, &mut t);
        // two offset entries + dims entry + 3 probabilities
        assert_eq!(t.len(), 6);
        assert!(t[0] >= 1 << 40);
        assert!(t[2] >= 1 << 41);
    }

    #[test]
    fn aos_trace_stays_in_one_record() {
        let mut t = Vec::new();
        aos_trace_read(2, 3, &mut t);
        let record = std::mem::size_of::<Belief>() as u64;
        assert!(t.iter().all(|&a| a >= 2 * record && a < 3 * record));
    }

    #[test]
    fn soa_uses_less_memory_for_small_cardinality() {
        // SoA stores exactly what it needs; AoS pads to MAX_BELIEFS.
        let aos: Vec<Belief> = (0..100).map(|_| Belief::uniform(2)).collect();
        let soa = SoaBeliefs::from_aos(&aos);
        assert!(soa.memory_bytes() < 100 * std::mem::size_of::<Belief>());
    }
}
