/root/repo/target/release/deps/exp_openmp-76584cc5c50a5dc2.d: crates/bench/src/bin/exp_openmp.rs Cargo.toml

/root/repo/target/release/deps/libexp_openmp-76584cc5c50a5dc2.rmeta: crates/bench/src/bin/exp_openmp.rs Cargo.toml

crates/bench/src/bin/exp_openmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
