/root/repo/target/release/deps/exp_par_speedup-cdfa0426f250d216.d: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

/root/repo/target/release/deps/libexp_par_speedup-cdfa0426f250d216.rmeta: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

crates/bench/src/bin/exp_par_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
