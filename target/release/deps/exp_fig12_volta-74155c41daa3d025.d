/root/repo/target/release/deps/exp_fig12_volta-74155c41daa3d025.d: crates/bench/src/bin/exp_fig12_volta.rs

/root/repo/target/release/deps/exp_fig12_volta-74155c41daa3d025: crates/bench/src/bin/exp_fig12_volta.rs

crates/bench/src/bin/exp_fig12_volta.rs:
