//! Image correction — the paper's third use case (§4): beliefs over pixel
//! values on a grid MRF, smoothing out channel noise.
//!
//! A binary test pattern is corrupted by flipping pixels with 12%
//! probability; each pixel's prior encodes its noisy reading with the
//! known error rate, a Potts smoothing potential couples neighbours, and
//! loopy BP recovers the image.
//!
//! ```text
//! cargo run --release --example image_denoising
//! ```

use credo::engines::SeqEdgeEngine;
use credo::graph::generators::{grid, GenOptions, PotentialKind};
use credo::graph::Belief;
use credo::{BpEngine, BpOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const W: usize = 48;
const H: usize = 16;
const FLIP: f64 = 0.12;

/// The clean test pattern: a ring plus a diagonal stripe.
fn truth(x: usize, y: usize) -> bool {
    let (cx, cy) = (W as f64 / 2.0, H as f64 / 2.0);
    let d = ((x as f64 - cx).powi(2) / 4.0 + (y as f64 - cy).powi(2)).sqrt();
    (4.0..6.5).contains(&d) || (x + 2 * y) % 24 < 3
}

fn render(label: &str, pixels: &[bool]) {
    println!("{label}:");
    for y in 0..H {
        let row: String = (0..W)
            .map(|x| if pixels[y * W + x] { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let clean: Vec<bool> = (0..W * H).map(|i| truth(i % W, i / W)).collect();
    let noisy: Vec<bool> = clean
        .iter()
        .map(|&b| if rng.gen_bool(FLIP) { !b } else { b })
        .collect();

    // Grid MRF with a Potts smoothing potential (§2.2's shared matrix).
    let opts = GenOptions::new(2)
        .with_seed(1)
        .with_potentials(PotentialKind::SharedSmoothing(0.22));
    let mut image = grid(W, H, &opts);

    // Priors: the noisy observation with the sensor's known error rate.
    let confidence = 1.0 - FLIP as f32;
    for (v, &bit) in noisy.iter().enumerate() {
        let prior = if bit {
            Belief::from_slice(&[1.0 - confidence, confidence])
        } else {
            Belief::from_slice(&[confidence, 1.0 - confidence])
        };
        image.priors_mut()[v] = prior;
        image.beliefs_mut()[v] = prior;
    }

    let stats = SeqEdgeEngine
        .run(&mut image, &BpOptions::default())
        .expect("grid fits every engine");
    let denoised: Vec<bool> = image.beliefs().iter().map(|b| b.argmax() == 1).collect();

    render("Ground truth", &clean);
    render(&format!("Noisy ({}% flips)", (FLIP * 100.0) as u32), &noisy);
    render("BP-denoised", &denoised);

    let errors = |img: &[bool]| img.iter().zip(&clean).filter(|(a, b)| a != b).count();
    let before = errors(&noisy);
    let after = errors(&denoised);
    println!(
        "\n{} iterations; pixel errors {before} -> {after} ({:.1}% -> {:.1}%)",
        stats.iterations,
        100.0 * before as f64 / clean.len() as f64,
        100.0 * after as f64 / clean.len() as f64,
    );
    assert!(after < before, "BP should remove noise");
}
