/root/repo/target/release/deps/serde_json-e7d5653c8b1faa92.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e7d5653c8b1faa92.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
