//! The CUDA per-edge engine ("CUDA Edge", §3.6).
//!
//! Three kernels per iteration: reset accumulators to priors, stream the
//! active arcs combining each message into its destination **atomically**
//! (the paradigm's cost, §3.3), then marginalize + diff. The arc stream is
//! coalesced; the atomic traffic concentrates on `active_nodes × beliefs`
//! addresses, which is what the contention model penalizes.

use crate::node::{charge_idle_iteration, charge_queue_repopulation};
use crate::setup::{GraphOnDevice, TraceGuard};
use credo_core::{
    BpEngine, BpOptions, BpStats, Dispatch, EngineError, IterationStats, Paradigm, Platform,
    WorkQueue,
};
use credo_gpusim::{atomic_mul_f32, Device, LaunchConfig, SharedSlice, ThreadCtx};
use credo_graph::{Belief, BeliefGraph};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Charges one edge-thread's work.
#[inline]
pub(crate) fn charge_edge_thread(ctx: &mut ThreadCtx, k: usize, constant_potential: bool) {
    // queue entry + arc record (coalesced stream), then the parent belief
    // (scattered).
    ctx.global_read(4, true);
    ctx.global_read(9, true);
    ctx.global_read(4 * k as u64, false);
    if constant_potential {
        ctx.constant_read((4 * k * k) as u64);
    } else {
        ctx.global_read((4 * k * k) as u64, true);
    }
    ctx.flops((2 * k * k) as u64);
    // One atomic combine per destination state.
    ctx.atomic(k as u64);
    // message buffer + registers — about half the Node paradigm's state.
    ctx.local_state((4 * k + 32) as u32);
}

/// Charges one reset-thread (priors → accumulators).
#[inline]
pub(crate) fn charge_reset_thread(ctx: &mut ThreadCtx, k: usize) {
    ctx.global_read(4, true);
    ctx.global_read(4 * k as u64, true);
    ctx.global_write(4 * k as u64, true);
}

/// Charges one marginalize-thread (accumulator → belief + diff).
#[inline]
pub(crate) fn charge_marginalize_thread(ctx: &mut ThreadCtx, k: usize) {
    ctx.global_read(4, true);
    ctx.global_read(4 * k as u64, true); // accumulator
    ctx.global_read(4 * k as u64, true); // previous belief (for the diff)
    ctx.flops(4 * k as u64);
    ctx.global_write(4 * k as u64, true);
    ctx.global_write(4, true);
    ctx.local_state((4 * k + 32) as u32);
}

/// The simulated-GPU per-edge engine.
pub struct CudaEdgeEngine {
    device: Device,
    batch: u32,
}

impl CudaEdgeEngine {
    /// Creates the engine on `device` with the default transfer batch.
    pub fn new(device: Device) -> Self {
        CudaEdgeEngine { device, batch: 8 }
    }

    /// Overrides the convergence-transfer batch size.
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl BpEngine for CudaEdgeEngine {
    fn name(&self) -> &'static str {
        "CUDA Edge"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Edge
    }

    fn platform(&self) -> Platform {
        Platform::GpuSimulated
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let card = graph
            .uniform_cardinality()
            .ok_or(EngineError::NonUniformCardinality)?;
        let host_start = Instant::now();
        let dev_start = self.device.elapsed();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let _trace_guard = TraceGuard::attach(&self.device, trace);
        let resident = GraphOnDevice::upload(&self.device, graph)?;
        let n = graph.num_nodes();
        let k = card;
        let constant_pot = resident.constant_potential;

        let acc: Vec<AtomicU32> = (0..n * k).map(|_| AtomicU32::new(0)).collect();
        let mut scratch: Vec<Belief> = graph.beliefs().to_vec();
        let mut diffs: Vec<f32> = vec![0.0; n];
        let mut queue = opts
            .work_queue
            .then(|| WorkQueue::new(n, |v| !graph.observed()[v]));
        let full_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        let full_arcs: Vec<u32> = (0..graph.num_arcs() as u32)
            .filter(|&a| !graph.observed()[graph.arc(a).dst as usize])
            .collect();

        let mut iterations = 0u32;
        let mut converged = false;
        let mut final_delta = 0.0f32;
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();
        let mut active_nodes: Vec<u32> = Vec::new();
        let mut active_arcs: Vec<u32> = Vec::new();

        'outer: loop {
            for _ in 0..self.batch {
                if iterations >= opts.max_iterations {
                    break 'outer;
                }
                let iter_dev_start = self.device.elapsed();
                match &queue {
                    Some(q) => {
                        active_nodes.clear();
                        active_nodes.extend_from_slice(q.active());
                        active_arcs.clear();
                        for &v in &active_nodes {
                            active_arcs.extend_from_slice(graph.in_arcs(v));
                        }
                    }
                    None => {
                        active_nodes.clear();
                        active_nodes.extend_from_slice(&full_nodes);
                        active_arcs.clear();
                        active_arcs.extend_from_slice(&full_arcs);
                    }
                }
                if active_nodes.is_empty() {
                    charge_idle_iteration(&self.device, 3);
                    iterations += 1;
                    converged = true;
                    per_iteration.push(IterationStats {
                        elapsed: self.device.elapsed() - iter_dev_start,
                        ..IterationStats::default()
                    });
                    continue;
                }
                let queue_depth = active_nodes.len() as u64;
                let iter_span = trace.span(
                    "iteration",
                    &[
                        ("iter", (iterations as u64).into()),
                        ("queue_depth", queue_depth.into()),
                        ("active_arcs", active_arcs.len().into()),
                    ],
                );

                // Kernel 1: reset accumulators to priors.
                {
                    let g = &*graph;
                    let acc_ref = &acc;
                    let nodes_ref = &active_nodes;
                    self.device.launch(
                        LaunchConfig::for_items(nodes_ref.len(), 1024).with_name("bp_edge_reset"),
                        |ctx, tid| {
                            if tid >= nodes_ref.len() {
                                return;
                            }
                            charge_reset_thread(ctx, k);
                            let v = nodes_ref[tid] as usize;
                            let prior = &g.priors()[v];
                            for st in 0..k {
                                acc_ref[v * k + st]
                                    .store(prior.get(st).to_bits(), Ordering::Relaxed);
                            }
                        },
                    );
                }

                // Kernel 2: stream arcs, combine atomically.
                {
                    let g = &*graph;
                    let acc_ref = &acc;
                    let arcs_ref = &active_arcs;
                    let cfg = LaunchConfig::for_items(arcs_ref.len(), 1024)
                        .with_atomic_targets((active_nodes.len() * k) as u64)
                        .with_name("bp_edge_combine");
                    self.device.launch(cfg, |ctx, tid| {
                        if tid >= arcs_ref.len() {
                            return;
                        }
                        charge_edge_thread(ctx, k, constant_pot);
                        let a = arcs_ref[tid];
                        let arc = g.arc(a);
                        let msg = g.potential(a).message(&g.beliefs()[arc.src as usize]);
                        let base = arc.dst as usize * k;
                        for st in 0..k {
                            atomic_mul_f32(&acc_ref[base + st], msg.get(st));
                        }
                    });
                }
                message_updates += active_arcs.len() as u64;

                // Kernel 3: marginalize + diff.
                {
                    let acc_ref = &acc;
                    let prev = graph.beliefs();
                    let scratch_shared = SharedSlice::new(&mut scratch);
                    let diffs_shared = SharedSlice::new(&mut diffs);
                    let nodes_ref = &active_nodes;
                    self.device.launch(
                        LaunchConfig::for_items(nodes_ref.len(), 1024)
                            .with_name("bp_edge_marginalize"),
                        |ctx, tid| {
                            if tid >= nodes_ref.len() {
                                return;
                            }
                            charge_marginalize_thread(ctx, k);
                            let v = nodes_ref[tid] as usize;
                            let mut new = Belief::zeros(k);
                            for st in 0..k {
                                new.set(
                                    st,
                                    f32::from_bits(acc_ref[v * k + st].load(Ordering::Relaxed)),
                                );
                            }
                            new.normalize();
                            let diff = new.l1_diff(&prev[v]);
                            // SAFETY: unique node ids per thread.
                            unsafe {
                                scratch_shared.write(v, new);
                                diffs_shared.write(v, diff);
                            }
                        },
                    );
                }
                node_updates += active_nodes.len() as u64;
                for &v in &active_nodes {
                    graph.beliefs_mut()[v as usize] = scratch[v as usize];
                }
                // Stats-only: convergence authority stays with the batched
                // device reduction.
                let iter_delta: f32 = active_nodes.iter().map(|&v| diffs[v as usize]).sum();

                if let Some(q) = &mut queue {
                    let mut changed = 0usize;
                    let mut woken_arcs = 0usize;
                    for &v in &active_nodes {
                        if diffs[v as usize] >= opts.queue_threshold {
                            changed += 1;
                            q.push_next(v);
                            if opts.wake_neighbors {
                                let outs = graph.out_arcs(v);
                                woken_arcs += outs.len();
                                for &a in outs {
                                    q.push_next(graph.arc(a).dst);
                                }
                            }
                        }
                    }
                    q.advance();
                    for &v in &active_nodes {
                        if diffs[v as usize] < opts.queue_threshold {
                            diffs[v as usize] = 0.0;
                        }
                    }
                    charge_queue_repopulation(
                        &self.device,
                        active_nodes.len(),
                        changed,
                        woken_arcs,
                    );
                }
                if trace.enabled() {
                    iter_span.record(&[("delta", iter_delta.into())]);
                    trace.counter("queue_depth", queue_depth as f64);
                }
                drop(iter_span);
                per_iteration.push(IterationStats {
                    delta: iter_delta,
                    node_updates: queue_depth,
                    message_updates: active_arcs.len() as u64,
                    queue_depth,
                    elapsed: self.device.elapsed() - iter_dev_start,
                });
                iterations += 1;
            }

            let sum = self.device.reduce_sum(&diffs);
            self.device.charge_d2h(4);
            final_delta = sum;
            if sum < opts.threshold {
                converged = true;
                break;
            }
            if queue.as_ref().is_some_and(|q| q.is_empty()) {
                converged = true;
                break;
            }
            if iterations >= opts.max_iterations {
                break;
            }
        }

        self.device.charge_d2h((n * k * 4) as u64);
        drop(resident);

        if trace.enabled() {
            run_span.record(&[
                ("iterations", iterations.into()),
                ("converged", converged.into()),
                ("kernel_launches", self.device.kernel_launches().into()),
                ("transfers", self.device.transfers().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations,
            converged,
            final_delta,
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: self.device.elapsed() - dev_start,
            host_time: host_start.elapsed(),
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_core::seq::SeqEdgeEngine;
    use credo_gpusim::{PASCAL_GTX1070, VOLTA_V100};
    use credo_graph::generators::{kronecker, synthetic, GenOptions};

    fn device() -> Device {
        Device::new(PASCAL_GTX1070)
    }

    #[test]
    fn matches_sequential_edge_engine() {
        let mut g1 = synthetic(300, 1200, &GenOptions::new(3).with_seed(51));
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        CudaEdgeEngine::new(device())
            .run(&mut g2, &BpOptions::default())
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn queue_mode_matches_plain() {
        let mut g1 = kronecker(7, 8, &GenOptions::new(2).with_seed(3));
        let mut g2 = g1.clone();
        CudaEdgeEngine::new(device())
            .run(&mut g1, &BpOptions::default())
            .unwrap();
        CudaEdgeEngine::new(device())
            .run(&mut g2, &BpOptions::with_work_queue())
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 5e-3);
        }
    }

    #[test]
    fn rejects_non_uniform_cardinality() {
        use credo_graph::{GraphBuilder, JointMatrix};
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(3));
        b.add_directed_edge_with(n0, n1, JointMatrix::uniform(2, 3));
        let mut g = b.build().unwrap();
        let err = CudaEdgeEngine::new(device())
            .run(&mut g, &BpOptions::default())
            .unwrap_err();
        assert_eq!(err, EngineError::NonUniformCardinality);
    }

    #[test]
    fn volta_is_faster_than_pascal_on_large_graphs() {
        // §4.4: faster runtimes with the architecture switch.
        let mut g1 = synthetic(5_000, 20_000, &GenOptions::new(2).with_seed(7));
        let mut g2 = g1.clone();
        let pascal = CudaEdgeEngine::new(Device::new(PASCAL_GTX1070))
            .run(&mut g1, &BpOptions::default())
            .unwrap();
        let volta = CudaEdgeEngine::new(Device::new(VOLTA_V100))
            .run(&mut g2, &BpOptions::default())
            .unwrap();
        assert!(
            volta.reported_time < pascal.reported_time,
            "volta {:?} pascal {:?}",
            volta.reported_time,
            pascal.reported_time
        );
    }

    #[test]
    fn oom_for_oversized_graphs() {
        // A graph whose device footprint exceeds 8 GB must be rejected, not
        // mis-simulated. Use a tiny fake VRAM by allocating most of it
        // first.
        let d = device();
        let _hog = credo_gpusim::TrackedAlloc::new(&d, d.profile().vram_bytes - 1024).unwrap();
        let mut g = synthetic(1000, 4000, &GenOptions::new(2));
        let err = CudaEdgeEngine::new(d)
            .run(&mut g, &BpOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfDeviceMemory { .. }));
    }
}
