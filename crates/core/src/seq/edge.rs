//! The sequential per-edge engine — the paper's "C Edge" implementation.
//!
//! §3.3: "each edge pulls the current state of the parent node and combines
//! it with the joint probability matrix along the edge and the child node's
//! state to produce the new state of the child node." The engine streams
//! the arc list linearly (excellent locality on edge data), accumulating
//! message products into per-node accumulators that a second pass
//! marginalizes. Sequentially no atomics are needed; the parallel variants
//! of this paradigm must combine atomically.

use crate::convergence::ConvergenceTracker;
use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::opts::BpOptions;
use crate::queue::WorkQueue;
use crate::stats::{BpStats, IterationStats};
use credo_graph::{Belief, BeliefGraph};
use std::time::Instant;
use tracing::Dispatch;

/// Sequential per-edge loopy BP.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqEdgeEngine;

impl BpEngine for SeqEdgeEngine {
    fn name(&self) -> &'static str {
        "C Edge"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Edge
    }

    fn platform(&self) -> Platform {
        Platform::CpuSequential
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let opts = &opts.normalized();
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let n = graph.num_nodes();
        let mut acc: Vec<Belief> = graph.priors().to_vec();
        let mut tracker = ConvergenceTracker::new(opts);
        let mut node_updates = 0u64;
        let mut message_updates = 0u64;
        let mut per_iteration: Vec<IterationStats> = Vec::new();

        let full_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !graph.observed()[v as usize])
            .collect();
        // Full arc sweep skips arcs into observed nodes once, up front.
        let full_arcs: Vec<u32> = (0..graph.num_arcs() as u32)
            .filter(|&a| !graph.observed()[graph.arc(a).dst as usize])
            .collect();

        let mut queue = opts
            .work_queue
            .then(|| WorkQueue::new(n, |v| !graph.observed()[v]));
        let mut arc_queue: Vec<u32> = Vec::new();
        let mut changed: Vec<u32> = Vec::new();

        loop {
            let iter_start = Instant::now();
            let (active_nodes, active_arcs): (&[u32], &[u32]) = match &queue {
                Some(q) => {
                    // §3.5: the edge queue holds "the indices of unconverged
                    // edges" — every arc whose destination is still queued.
                    arc_queue.clear();
                    for &v in q.active() {
                        arc_queue.extend_from_slice(graph.in_arcs(v));
                    }
                    (q.active(), &arc_queue)
                }
                None => (&full_nodes, &full_arcs),
            };
            if active_nodes.is_empty() {
                tracker.mark_converged();
                break;
            }
            let queue_depth = active_nodes.len() as u64;
            let arcs_scheduled = active_arcs.len() as u64;
            let iter_span = trace.span(
                "iteration",
                &[
                    ("iter", (per_iteration.len() as u64).into()),
                    ("queue_depth", queue_depth.into()),
                    ("active_arcs", arcs_scheduled.into()),
                ],
            );

            // Phase 1: reset accumulators to priors for the nodes being
            // recomputed.
            for &v in active_nodes {
                acc[v as usize] = graph.priors()[v as usize];
            }

            // Phase 2: stream the active arcs, combining each message into
            // its destination's accumulator.
            {
                let prev = graph.beliefs();
                for &a in active_arcs {
                    let arc = graph.arc(a);
                    let msg = graph.potential(a).message(&prev[arc.src as usize]);
                    acc[arc.dst as usize].mul_assign_rescaling(&msg);
                }
            }
            message_updates += active_arcs.len() as u64;

            // Phase 3: marginalize and measure convergence.
            let mut sum = 0.0f32;
            changed.clear();
            {
                let beliefs = graph.beliefs_mut();
                for &v in active_nodes {
                    let mut new = acc[v as usize];
                    new.normalize();
                    let diff = new.l1_diff(&beliefs[v as usize]);
                    sum += diff;
                    beliefs[v as usize] = new;
                    if diff >= opts.queue_threshold {
                        changed.push(v);
                    }
                }
            }
            node_updates += active_nodes.len() as u64;

            if let Some(q) = &mut queue {
                for &v in &changed {
                    q.push_next(v);
                    if opts.wake_neighbors {
                        for &a in graph.out_arcs(v) {
                            q.push_next(graph.arc(a).dst);
                        }
                    }
                }
                q.advance();
            }

            if trace.enabled() {
                iter_span.record(&[("delta", sum.into())]);
                trace.counter("queue_depth", queue_depth as f64);
                trace.counter("active_arcs", arcs_scheduled as f64);
            }
            drop(iter_span);
            per_iteration.push(IterationStats {
                delta: sum,
                node_updates: queue_depth,
                message_updates: arcs_scheduled,
                queue_depth,
                elapsed: iter_start.elapsed(),
            });

            if !tracker.record(sum) {
                break;
            }
        }

        let elapsed = start.elapsed();
        if trace.enabled() {
            run_span.record(&[
                ("iterations", tracker.iterations().into()),
                ("converged", tracker.converged().into()),
            ]);
        }
        Ok(BpStats {
            engine: self.name(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            final_delta: if tracker.last_sum().is_finite() {
                tracker.last_sum()
            } else {
                0.0
            },
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqNodeEngine;
    use credo_graph::generators::{
        kronecker, preferential_attachment, synthetic, GenOptions, PotentialKind,
    };
    use credo_graph::{GraphBuilder, JointMatrix};

    #[test]
    fn edge_and_node_engines_agree() {
        for seed in [1u64, 2, 3] {
            let opts = GenOptions::new(3).with_seed(seed);
            let mut g1 = synthetic(150, 600, &opts);
            let mut g2 = g1.clone();
            let run = BpOptions::default();
            SeqNodeEngine.run(&mut g1, &run).unwrap();
            SeqEdgeEngine.run(&mut g2, &run).unwrap();
            for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
                assert!(
                    a.linf_diff(b) < 1e-4,
                    "paradigms must compute the same fixed point (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn agree_on_heavy_tailed_graphs() {
        let mut g1 = kronecker(8, 8, &GenOptions::new(2).with_seed(11));
        let mut g2 = g1.clone();
        SeqNodeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        SeqEdgeEngine.run(&mut g2, &BpOptions::default()).unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn agree_with_per_edge_potentials() {
        let opts = GenOptions::new(2)
            .with_seed(4)
            .with_potentials(PotentialKind::PerEdgeRandom);
        let mut g1 = synthetic(80, 240, &opts);
        let mut g2 = g1.clone();
        SeqNodeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        SeqEdgeEngine.run(&mut g2, &BpOptions::default()).unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 1e-3);
        }
    }

    #[test]
    fn queue_mode_matches_full_sweeps() {
        let mut g1 = preferential_attachment(300, 3, &GenOptions::new(2).with_seed(6));
        let mut g2 = g1.clone();
        SeqEdgeEngine.run(&mut g1, &BpOptions::default()).unwrap();
        let stats = SeqEdgeEngine
            .run(&mut g2, &BpOptions::with_work_queue())
            .unwrap();
        for (a, b) in g1.beliefs().iter().zip(g2.beliefs()) {
            assert!(a.linf_diff(b) < 5e-3);
        }
        assert!(stats.iterations > 0);
    }

    #[test]
    fn hub_keeps_edge_queue_large() {
        // Star: hub 0 with 60 leaves. Once the leaves converge, a single
        // unconverged hub keeps 60 incoming arcs active (the §4.2/Fig 9
        // asymmetry between node- and edge-granular queues).
        let mut b = GraphBuilder::new();
        let hub = b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.05));
        for i in 0..60 {
            let leaf = b.add_node(Belief::from_slice(&[0.4 + 0.003 * i as f32, 0.0]));
            b.add_undirected_edge(hub, leaf);
        }
        let mut g = b.build().unwrap();
        for v in g.beliefs_mut() {
            v.normalize();
        }
        let stats = SeqEdgeEngine
            .run(&mut g, &BpOptions::with_work_queue())
            .unwrap();
        // More message updates per node update than the node count would
        // suggest: hub arcs dominate late iterations.
        assert!(stats.message_updates > stats.node_updates);
    }

    #[test]
    fn arcs_into_observed_nodes_are_skipped() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::uniform(2));
        let n1 = b.add_node(Belief::uniform(2));
        b.shared_potential(JointMatrix::smoothing(2, 0.2));
        b.add_undirected_edge(n0, n1);
        let mut g = b.build().unwrap();
        g.observe(1, 0);
        let stats = SeqEdgeEngine.run(&mut g, &BpOptions::default()).unwrap();
        assert_eq!(g.beliefs()[1].as_slice(), &[1.0, 0.0]);
        // Only the arc 1 -> 0 is ever processed.
        assert_eq!(stats.message_updates, stats.iterations as u64);
    }
}
