//! The Table 1 benchmark suite — the paper's 34 graphs, with synthetic
//! stand-ins for the networkrepository downloads (see DESIGN.md's
//! substitution notes) and a scale knob that shrinks every graph by a
//! constant divisor while preserving its degree-distribution shape.

use credo_graph::generators::{
    kronecker, preferential_attachment, synthetic, GenOptions, PotentialKind,
};
use credo_graph::BeliefGraph;

/// How a stand-in is generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Uniform-random synthetic graph (the paper's own synthetic family).
    Synthetic,
    /// R-MAT Kronecker (`kron-g500-lognN`).
    Kronecker {
        /// log₂ of the node count.
        log_n: u32,
    },
    /// Preferential-attachment stand-in for social/web graphs.
    PowerLaw,
}

/// One Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Full name from Table 1.
    pub name: &'static str,
    /// Abbreviation from Table 1.
    pub abbrev: &'static str,
    /// Generator family.
    pub kind: GraphKind,
    /// Node count at full scale.
    pub nodes: usize,
    /// Edge count at full scale.
    pub edges: usize,
    /// Member of the bold figure subset.
    pub bold: bool,
}

/// Experiment scale: a constant divisor on node counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ÷1024 — smoke-test sizes, seconds end to end.
    Quick,
    /// ÷128 — minutes end to end; the default.
    Default,
    /// ÷1 — the paper's sizes.
    Full,
}

impl Scale {
    /// The node-count divisor.
    pub fn divisor(self) -> usize {
        match self {
            Scale::Quick => 1024,
            Scale::Default => 128,
            Scale::Full => 1,
        }
    }
}

macro_rules! spec {
    ($name:literal, $abbrev:literal, $kind:expr, $nodes:expr, $edges:expr, $bold:expr) => {
        GraphSpec {
            name: $name,
            abbrev: $abbrev,
            kind: $kind,
            nodes: $nodes,
            edges: $edges,
            bold: $bold,
        }
    };
}

/// The full Table 1 suite (34 graphs), in ascending node order within each
/// column of the paper's table.
pub const TABLE1: [GraphSpec; 34] = [
    spec!(
        "10_nodes_40_edges",
        "10x40",
        GraphKind::Synthetic,
        10,
        40,
        true
    ),
    spec!(
        "100_nodes_400_edges",
        "100x400",
        GraphKind::Synthetic,
        100,
        400,
        false
    ),
    spec!(
        "1000_nodes_4000_edges",
        "1k4k",
        GraphKind::Synthetic,
        1_000,
        4_000,
        true
    ),
    spec!(
        "10000_nodes_40000_edges",
        "10kx40k",
        GraphKind::Synthetic,
        10_000,
        40_000,
        false
    ),
    spec!(
        "kron-g500-logn16",
        "K16",
        GraphKind::Kronecker { log_n: 16 },
        55_321,
        2_456_398,
        false
    ),
    spec!(
        "hollywood-2009",
        "HO",
        GraphKind::PowerLaw,
        83_832,
        549_038,
        false
    ),
    spec!(
        "100000_nodes_400000_edges",
        "100kx400k",
        GraphKind::Synthetic,
        100_000,
        400_000,
        true
    ),
    spec!(
        "kron-g500-logn17",
        "K17",
        GraphKind::Kronecker { log_n: 17 },
        131_071,
        5_114_375,
        false
    ),
    spec!(
        "loc-gowalla",
        "GO",
        GraphKind::PowerLaw,
        196_591,
        1_900_654,
        true
    ),
    spec!(
        "200000_nodes_800000_edges",
        "200kx800k",
        GraphKind::Synthetic,
        200_000,
        800_000,
        false
    ),
    spec!(
        "soc-google-plus",
        "GP",
        GraphKind::PowerLaw,
        211_187,
        1_506_896,
        false
    ),
    spec!(
        "kron-g500-logn18",
        "K18",
        GraphKind::Kronecker { log_n: 18 },
        262_144,
        10_583_222,
        false
    ),
    spec!(
        "web-Stanford",
        "ST",
        GraphKind::PowerLaw,
        281_903,
        2_312_497,
        true
    ),
    spec!(
        "400000_nodes_1600000_edges",
        "400kx1600k",
        GraphKind::Synthetic,
        400_000,
        1_600_000,
        false
    ),
    spec!(
        "kron-g500-logn19",
        "K19",
        GraphKind::Kronecker { log_n: 19 },
        409_175,
        21_781_478,
        false
    ),
    spec!(
        "soc-twitter-follows-mun",
        "TF",
        GraphKind::PowerLaw,
        465_017,
        835_423,
        false
    ),
    spec!(
        "web-it-2004",
        "IT",
        GraphKind::PowerLaw,
        509_338,
        7_178_413,
        false
    ),
    spec!(
        "soc-delicious",
        "DE",
        GraphKind::PowerLaw,
        536_108,
        1_365_961,
        false
    ),
    spec!(
        "600000_nodes_1200000_edges",
        "600kx1200k",
        GraphKind::Synthetic,
        600_000,
        1_200_000,
        true
    ),
    spec!(
        "kron-g500-logn20",
        "K20",
        GraphKind::Kronecker { log_n: 20 },
        795_241,
        44_620_272,
        false
    ),
    spec!(
        "800000_nodes_3200000_edges",
        "800kx3200k",
        GraphKind::Synthetic,
        800_000,
        3_200_000,
        true
    ),
    spec!(
        "1000000_nodes_4000000_edges",
        "1Mx4M",
        GraphKind::Synthetic,
        1_000_000,
        4_000_000,
        false
    ),
    spec!(
        "com-youtube",
        "YO",
        GraphKind::PowerLaw,
        1_134_890,
        2_987_624,
        true
    ),
    spec!(
        "kron-g500-logn21",
        "K21",
        GraphKind::Kronecker { log_n: 21 },
        1_544_087,
        91_042_010,
        true
    ),
    spec!(
        "soc-pokec-relationships",
        "PO",
        GraphKind::PowerLaw,
        1_632_803,
        30_622_564,
        true
    ),
    spec!(
        "web-wiki-ch-internal",
        "WW",
        GraphKind::PowerLaw,
        1_930_275,
        9_359_108,
        false
    ),
    spec!(
        "2000000_nodes_8000000_edges",
        "2Mx8M",
        GraphKind::Synthetic,
        2_000_000,
        8_000_000,
        true
    ),
    spec!(
        "wiki-Talk",
        "WT",
        GraphKind::PowerLaw,
        2_394_385,
        5_021_410,
        false
    ),
    spec!(
        "soc-orkut",
        "OR",
        GraphKind::PowerLaw,
        2_997_166,
        106_349_209,
        true
    ),
    spec!(
        "wikipedia-link-en",
        "WL",
        GraphKind::PowerLaw,
        3_371_716,
        31_956_268,
        false
    ),
    spec!(
        "soc-LiveJournal1",
        "LJ",
        GraphKind::PowerLaw,
        4_846_609,
        68_475_391,
        true
    ),
    spec!(
        "tech-p2p",
        "TP",
        GraphKind::PowerLaw,
        5_792_297,
        8_105_822,
        false
    ),
    spec!(
        "friendster",
        "FR",
        GraphKind::PowerLaw,
        8_658_744,
        55_170_227,
        true
    ),
    spec!(
        "soc-twitter-2010",
        "TW",
        GraphKind::PowerLaw,
        21_297_772,
        265_025_809,
        true
    ),
];

/// The paper's three use cases (§4): binary beliefs, virus propagation,
/// 32-bit image correction.
pub const BELIEF_CONFIGS: [usize; 3] = [2, 3, 32];

impl GraphSpec {
    /// Node count at the given scale (never below 10).
    pub fn scaled_nodes(&self, scale: Scale) -> usize {
        (self.nodes / scale.divisor()).max(10)
    }

    /// Edge count at the given scale, preserving the edge/node ratio.
    pub fn scaled_edges(&self, scale: Scale) -> usize {
        let n = self.scaled_nodes(scale);
        ((self.edges as f64 / self.nodes as f64) * n as f64)
            .round()
            .max(1.0) as usize
    }

    /// Generates the stand-in graph at `scale` with `beliefs` states per
    /// node and a shared smoothing potential (the §2.2 large-graph mode).
    pub fn generate(&self, scale: Scale, beliefs: usize) -> BeliefGraph {
        let opts = GenOptions::new(beliefs)
            .with_seed(fxhash(self.abbrev) ^ beliefs as u64)
            .with_potentials(PotentialKind::SharedSmoothing(0.2));
        let n = self.scaled_nodes(scale);
        let e = self.scaled_edges(scale);
        match self.kind {
            GraphKind::Synthetic => synthetic(n, e, &opts),
            GraphKind::Kronecker { .. } => {
                let log_n = (n as f64).log2().round().max(3.0) as u32;
                let nn = 1usize << log_n;
                let factor = (e / nn).max(1);
                kronecker(log_n, factor, &opts)
            }
            GraphKind::PowerLaw => {
                let m = (e / n).clamp(1, 64);
                preferential_attachment(n.max(m + 1), m, &opts)
            }
        }
    }
}

/// Deterministic string hash for per-graph seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The bold figure subset.
pub fn bold_subset() -> Vec<GraphSpec> {
    TABLE1.iter().copied().filter(|s| s.bold).collect()
}

/// Synthetic-only subset (the §2.1.1 algorithm-comparison workload).
pub fn synthetic_subset() -> Vec<GraphSpec> {
    TABLE1
        .iter()
        .copied()
        .filter(|s| s.kind == GraphKind::Synthetic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_34_graphs() {
        assert_eq!(TABLE1.len(), 34);
        let bolds = bold_subset().len();
        assert!(bolds >= 10, "figure subset should be substantial: {bolds}");
    }

    #[test]
    fn full_scale_counts_match_table1() {
        let tw = TABLE1.iter().find(|s| s.abbrev == "TW").unwrap();
        assert_eq!(tw.nodes, 21_297_772);
        assert_eq!(tw.edges, 265_025_809);
        assert_eq!(tw.scaled_nodes(Scale::Full), tw.nodes);
    }

    #[test]
    fn scaling_preserves_density() {
        let spec = TABLE1.iter().find(|s| s.abbrev == "2Mx8M").unwrap();
        let n = spec.scaled_nodes(Scale::Default);
        let e = spec.scaled_edges(Scale::Default);
        let ratio = e as f64 / n as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn quick_scale_generates_quickly_and_validly() {
        for spec in TABLE1.iter().take(8) {
            let g = spec.generate(Scale::Quick, 2);
            g.validate().unwrap();
            assert!(g.num_nodes() >= 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &TABLE1[2];
        let a = spec.generate(Scale::Quick, 3);
        let b = spec.generate(Scale::Quick, 3);
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.arcs()[0], b.arcs()[0]);
    }

    #[test]
    fn kronecker_standins_are_heavy_tailed() {
        let k = TABLE1.iter().find(|s| s.abbrev == "K18").unwrap();
        let g = k.generate(Scale::Default, 2);
        assert!(g.metadata().skew() < 0.2);
    }
}
