/root/repo/target/release/deps/exp_aos_soa-7fa394e0c7a68154.d: crates/bench/src/bin/exp_aos_soa.rs Cargo.toml

/root/repo/target/release/deps/libexp_aos_soa-7fa394e0c7a68154.rmeta: crates/bench/src/bin/exp_aos_soa.rs Cargo.toml

crates/bench/src/bin/exp_aos_soa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
