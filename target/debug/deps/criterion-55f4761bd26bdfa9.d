/root/repo/target/debug/deps/criterion-55f4761bd26bdfa9.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-55f4761bd26bdfa9.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-55f4761bd26bdfa9.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
