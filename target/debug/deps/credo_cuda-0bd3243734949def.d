/root/repo/target/debug/deps/credo_cuda-0bd3243734949def.d: crates/cuda/src/lib.rs crates/cuda/src/edge.rs crates/cuda/src/node.rs crates/cuda/src/openacc.rs crates/cuda/src/setup.rs

/root/repo/target/debug/deps/credo_cuda-0bd3243734949def: crates/cuda/src/lib.rs crates/cuda/src/edge.rs crates/cuda/src/node.rs crates/cuda/src/openacc.rs crates/cuda/src/setup.rs

crates/cuda/src/lib.rs:
crates/cuda/src/edge.rs:
crates/cuda/src/node.rs:
crates/cuda/src/openacc.rs:
crates/cuda/src/setup.rs:
