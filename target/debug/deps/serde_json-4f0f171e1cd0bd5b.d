/root/repo/target/debug/deps/serde_json-4f0f171e1cd0bd5b.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-4f0f171e1cd0bd5b.rlib: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-4f0f171e1cd0bd5b.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
