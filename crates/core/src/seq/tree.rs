//! The traditional (non-loopy) two-pass BP algorithm (§2.1).
//!
//! "The φ-value emissions must start from the root nodes and work their way
//! down the tree. Likewise, the ψ-value emissions must start from the
//! terminal nodes [and] work their way up the tree to the roots."
//!
//! On trees this engine is *exact* sum-product (verified against brute
//! force in the tests). On cyclic inputs it follows the only sensible
//! interpretation of running a tree algorithm on a general graph: it
//! computes a BFS spanning forest, determines levels, and runs the two
//! sweeps over the forest — the "determining the levels of a graph and
//! processing the graph by-level" overhead the paper measures in §2.1.1.

use crate::engine::{BpEngine, EngineError, Paradigm, Platform};
use crate::opts::BpOptions;
use crate::stats::{BpStats, IterationStats};
use credo_graph::{Belief, BeliefGraph};
use std::time::Instant;
use tracing::Dispatch;

/// Per-node spanning-forest record.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TreeSlot {
    /// Arc realizing the edge to the BFS parent, if any.
    pub parent_arc: Option<(u32, bool)>, // (arc id, oriented parent -> node)
    /// Parent node id (meaningful when `parent_arc` is Some).
    pub parent: u32,
    /// BFS level (0 for roots). Carried for diagnostics and invariant
    /// checks; the sweeps themselves use the grouped `levels` lists.
    #[cfg_attr(not(test), allow(dead_code))]
    pub level: u32,
}

/// Computes a BFS spanning forest over the graph's arcs (treated as
/// undirected), returning per-node slots and nodes grouped by level.
pub(crate) fn spanning_forest(graph: &BeliefGraph) -> (Vec<TreeSlot>, Vec<Vec<u32>>) {
    let n = graph.num_nodes();
    let mut slots = vec![
        TreeSlot {
            parent_arc: None,
            parent: u32::MAX,
            level: 0
        };
        n
    ];
    let mut visited = vec![false; n];
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        frontier.clear();
        frontier.push(start);
        let mut level = 0u32;
        while !frontier.is_empty() {
            if levels.len() <= level as usize {
                levels.push(Vec::new());
            }
            levels[level as usize].extend_from_slice(&frontier);
            next.clear();
            for &u in &frontier {
                // Out-arcs: u -> w, forward orientation for w's parent edge.
                for &a in graph.out_arcs(u) {
                    let w = graph.arc(a).dst;
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        slots[w as usize] = TreeSlot {
                            parent_arc: Some((a, true)),
                            parent: u,
                            level: level + 1,
                        };
                        next.push(w);
                    }
                }
                // In-arcs: w -> u, reverse orientation for w's parent edge.
                for &a in graph.in_arcs(u) {
                    let w = graph.arc(a).src;
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        slots[w as usize] = TreeSlot {
                            parent_arc: Some((a, false)),
                            parent: u,
                            level: level + 1,
                        };
                        next.push(w);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
    }
    (slots, levels)
}

/// Runs exact two-pass sum-product over a spanning forest described by
/// `slots`/`levels`, writing beliefs into the graph. Returns
/// (node updates, message updates).
pub(crate) fn two_pass(
    graph: &mut BeliefGraph,
    slots: &[TreeSlot],
    levels: &[Vec<u32>],
    children: &[Vec<u32>],
    trace: &Dispatch,
    per_iteration: &mut Vec<IterationStats>,
) -> (u64, u64) {
    let n = graph.num_nodes();
    let card = |v: u32| graph.cardinality(v);
    // up[v]: message from v to its parent; down[v]: message parent -> v.
    let mut up: Vec<Belief> = (0..n as u32).map(|v| Belief::uniform(card(v))).collect();
    let mut down: Vec<Belief> = up.clone();
    let mut messages = 0u64;

    // Upward (ψ) sweep: deepest level first.
    let up_start = Instant::now();
    let up_span = trace.span("pass:up", &[]);
    for level_nodes in levels.iter().rev() {
        for &v in level_nodes {
            let Some((arc, fwd)) = slots[v as usize].parent_arc else {
                continue;
            };
            let mut beta = graph.priors()[v as usize];
            for &c in &children[v as usize] {
                beta.mul_assign(&up[c as usize]);
                beta.scale_max_to_one();
            }
            let pot = graph.potential(arc);
            up[v as usize] = if fwd {
                pot.message_reverse(&beta)
            } else {
                pot.message(&beta)
            };
            messages += 1;
        }
    }

    let up_messages = messages;
    if trace.enabled() {
        up_span.record(&[("messages", up_messages.into())]);
    }
    drop(up_span);
    per_iteration.push(IterationStats {
        delta: 0.0,
        node_updates: 0,
        message_updates: up_messages,
        queue_depth: 0,
        elapsed: up_start.elapsed(),
    });

    // Downward (φ) sweep: roots first. Uses prefix/suffix products over the
    // parent's children so each child's own upward message is excluded.
    let down_start = Instant::now();
    let down_span = trace.span("pass:down", &[]);
    let mut prefix: Vec<Belief> = Vec::new();
    for level_nodes in levels {
        for &p in level_nodes {
            let kids = &children[p as usize];
            if kids.is_empty() {
                continue;
            }
            let mut alpha_base = graph.priors()[p as usize];
            if slots[p as usize].parent_arc.is_some() {
                alpha_base.mul_assign(&down[p as usize]);
                alpha_base.scale_max_to_one();
            }
            // prefix[i] = alpha_base * up[kids[0]] * ... * up[kids[i-1]]
            prefix.clear();
            prefix.push(alpha_base);
            for &c in kids {
                let mut next = prefix[prefix.len() - 1];
                next.mul_assign(&up[c as usize]);
                next.scale_max_to_one();
                prefix.push(next);
            }
            // Walk suffixes backwards.
            let mut suffix = Belief::uniform(card(p));
            suffix.as_mut_slice().fill(1.0);
            for i in (0..kids.len()).rev() {
                let c = kids[i];
                let mut alpha = prefix[i];
                alpha.mul_assign(&suffix);
                alpha.scale_max_to_one();
                let (arc, fwd) = slots[c as usize]
                    .parent_arc
                    .expect("child has a parent arc by construction");
                let pot = graph.potential(arc);
                down[c as usize] = if fwd {
                    pot.message(&alpha)
                } else {
                    pot.message_reverse(&alpha)
                };
                messages += 1;
                suffix.mul_assign(&up[c as usize]);
                suffix.scale_max_to_one();
            }
        }
    }

    // Beliefs: prior × down message × children's up messages.
    let observed = graph.observed().to_vec();
    for v in 0..n as u32 {
        if observed[v as usize] {
            continue;
        }
        let mut b = graph.priors()[v as usize];
        if slots[v as usize].parent_arc.is_some() {
            b.mul_assign(&down[v as usize]);
            b.scale_max_to_one();
        }
        for &c in &children[v as usize] {
            b.mul_assign(&up[c as usize]);
            b.scale_max_to_one();
        }
        b.normalize();
        graph.beliefs_mut()[v as usize] = b;
    }
    if trace.enabled() {
        down_span.record(&[("messages", (messages - up_messages).into())]);
    }
    drop(down_span);
    per_iteration.push(IterationStats {
        delta: 0.0,
        node_updates: n as u64,
        message_updates: messages - up_messages,
        queue_depth: 0,
        elapsed: down_start.elapsed(),
    });
    (n as u64, messages)
}

/// Builds children lists from the spanning-forest parent pointers.
pub(crate) fn children_lists(slots: &[TreeSlot]) -> Vec<Vec<u32>> {
    let mut children = vec![Vec::new(); slots.len()];
    for (v, slot) in slots.iter().enumerate() {
        if slot.parent_arc.is_some() {
            children[slot.parent as usize].push(v as u32);
        }
    }
    children
}

/// The optimized traditional two-pass engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeEngine;

impl BpEngine for TreeEngine {
    fn name(&self) -> &'static str {
        "Tree (two-pass)"
    }

    fn paradigm(&self) -> Paradigm {
        Paradigm::Tree
    }

    fn platform(&self) -> Platform {
        Platform::CpuSequential
    }

    fn run_traced(
        &self,
        graph: &mut BeliefGraph,
        opts: &BpOptions,
        trace: &Dispatch,
    ) -> Result<BpStats, EngineError> {
        let start = Instant::now();
        let run_span = trace.span("run", &[("engine", self.name().into())]);
        let (slots, levels) = spanning_forest(graph);
        let children = children_lists(&slots);
        let mut per_iteration = Vec::new();
        let (node_updates, message_updates) =
            two_pass(graph, &slots, &levels, &children, trace, &mut per_iteration);
        let _ = opts;
        let elapsed = start.elapsed();
        drop(run_span);
        Ok(BpStats {
            engine: self.name(),
            iterations: 2,
            converged: true,
            final_delta: 0.0,
            node_updates,
            message_updates,
            atomic_retries: 0,
            reported_time: elapsed,
            host_time: elapsed,
            per_iteration,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use credo_graph::generators::{random_tree, synthetic, GenOptions, PotentialKind};
    use credo_graph::{GraphBuilder, JointMatrix};

    /// Brute-force marginals of the pairwise model
    /// P(x) ∝ Π_v prior[v](x_v) · Π_arcs J_a(x_src, x_dst).
    pub(crate) fn brute_force_marginals(g: &BeliefGraph) -> Vec<Belief> {
        let n = g.num_nodes();
        let cards: Vec<usize> = (0..n as u32).map(|v| g.cardinality(v)).collect();
        let total: usize = cards.iter().product();
        assert!(total <= 1 << 20, "brute force only for tiny graphs");
        let mut marginals: Vec<Belief> = cards.iter().map(|&c| Belief::zeros(c)).collect();
        let mut assignment = vec![0usize; n];
        for mut idx in 0..total {
            for (slot, &card) in assignment.iter_mut().zip(&cards) {
                *slot = idx % card;
                idx /= card;
            }
            let mut p = 1.0f64;
            for (prior, &state) in g.priors().iter().zip(&assignment) {
                p *= prior.get(state) as f64;
            }
            for (a, arc) in g.arcs().iter().enumerate() {
                let pot = g.potential(a as u32);
                p *= pot.get(assignment[arc.src as usize], assignment[arc.dst as usize]) as f64;
            }
            for v in 0..n {
                let cur = marginals[v].get(assignment[v]);
                marginals[v].set(assignment[v], cur + p as f32);
            }
        }
        for m in &mut marginals {
            m.normalize();
        }
        marginals
    }

    #[test]
    fn exact_on_a_chain() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Belief::from_slice(&[0.9, 0.1]));
        let n1 = b.add_node(Belief::uniform(2));
        let n2 = b.add_node(Belief::from_slice(&[0.3, 0.7]));
        b.add_directed_edge_with(n0, n1, JointMatrix::smoothing(2, 0.2));
        b.add_directed_edge_with(n1, n2, JointMatrix::smoothing(2, 0.3));
        let mut g = b.build().unwrap();
        let expected = brute_force_marginals(&g);
        TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        for (got, want) in g.beliefs().iter().zip(&expected) {
            assert!(got.linf_diff(want) < 1e-5, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn exact_on_random_trees() {
        for seed in [3u64, 8, 21] {
            let opts = GenOptions::new(3)
                .with_seed(seed)
                .with_potentials(PotentialKind::PerEdgeRandom);
            let mut g = random_tree(9, &opts);
            let expected = brute_force_marginals(&g);
            TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
            for (v, (got, want)) in g.beliefs().iter().zip(&expected).enumerate() {
                assert!(
                    got.linf_diff(want) < 1e-4,
                    "seed {seed} node {v}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn exact_on_a_star() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(Belief::uniform(2));
        for i in 0..5u32 {
            let leaf = b.add_node(Belief::from_slice(&[0.5 + 0.08 * i as f32, 0.5]));
            b.add_directed_edge_with(hub, leaf, JointMatrix::smoothing(2, 0.15));
        }
        let mut g = b.build().unwrap();
        let expected = brute_force_marginals(&g);
        TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        for (got, want) in g.beliefs().iter().zip(&expected) {
            assert!(got.linf_diff(want) < 1e-4);
        }
    }

    #[test]
    fn handles_forests() {
        // Two disconnected chains.
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(Belief::from_slice(&[0.8, 0.2]));
        }
        b.add_directed_edge_with(0, 1, JointMatrix::smoothing(2, 0.1));
        b.add_directed_edge_with(2, 3, JointMatrix::smoothing(2, 0.1));
        let mut g = b.build().unwrap();
        let expected = brute_force_marginals(&g);
        TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        for (got, want) in g.beliefs().iter().zip(&expected) {
            assert!(got.linf_diff(want) < 1e-5);
        }
    }

    #[test]
    fn runs_on_cyclic_graphs_via_spanning_forest() {
        let mut g = synthetic(50, 200, &GenOptions::new(2).with_seed(9));
        let stats = TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        assert_eq!(stats.iterations, 2);
        for b in g.beliefs() {
            assert!(b.is_valid() && b.is_normalized(1e-4));
        }
        // Spanning forest of a connected-ish graph uses < all arcs.
        assert!(stats.message_updates < g.num_arcs() as u64);
    }

    #[test]
    fn spanning_forest_levels_partition_nodes() {
        let g = synthetic(60, 180, &GenOptions::new(2).with_seed(2));
        let (slots, levels) = spanning_forest(&g);
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes());
        for (lv, nodes) in levels.iter().enumerate() {
            for &v in nodes {
                assert_eq!(slots[v as usize].level as usize, lv);
            }
        }
    }

    #[test]
    fn observed_nodes_kept_fixed() {
        let opts = GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom);
        let mut g = random_tree(8, &opts);
        g.observe(3, 1);
        TreeEngine.run(&mut g, &BpOptions::default()).unwrap();
        assert_eq!(g.beliefs()[3].as_slice(), &[0.0, 1.0]);
    }
}
