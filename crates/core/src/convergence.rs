//! Convergence bookkeeping (Algorithm 1's outer `while sum >= threshold`).

use crate::opts::BpOptions;

/// Tracks the global convergence sum and the iteration cap.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceTracker {
    threshold: f32,
    max_iterations: u32,
    iteration: u32,
    last_sum: f32,
    converged: bool,
}

impl ConvergenceTracker {
    /// Builds a tracker from the engine options.
    pub fn new(opts: &BpOptions) -> Self {
        ConvergenceTracker {
            threshold: opts.threshold,
            max_iterations: opts.max_iterations,
            iteration: 0,
            last_sum: f32::INFINITY,
            converged: false,
        }
    }

    /// Records one completed iteration with its summed L1 change; returns
    /// true when iteration should continue.
    pub fn record(&mut self, sum: f32) -> bool {
        self.iteration += 1;
        self.last_sum = sum;
        if sum < self.threshold {
            self.converged = true;
            return false;
        }
        self.iteration < self.max_iterations
    }

    /// Marks the run converged for a reason other than the sum (e.g. the
    /// work queue drained).
    pub fn mark_converged(&mut self) {
        self.converged = true;
    }

    /// Iterations completed.
    pub fn iterations(&self) -> u32 {
        self.iteration
    }

    /// The last recorded sum.
    pub fn last_sum(&self) -> f32 {
        self.last_sum
    }

    /// Whether convergence (rather than the cap) ended the run.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_on_threshold() {
        let opts = BpOptions::default().with_threshold(0.5);
        let mut t = ConvergenceTracker::new(&opts);
        assert!(t.record(10.0));
        assert!(t.record(1.0));
        assert!(!t.record(0.4));
        assert!(t.converged());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn stops_on_cap_without_convergence() {
        let opts = BpOptions::default().with_max_iterations(3);
        let mut t = ConvergenceTracker::new(&opts);
        assert!(t.record(10.0));
        assert!(t.record(10.0));
        assert!(!t.record(10.0));
        assert!(!t.converged());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn queue_drain_marks_converged() {
        let mut t = ConvergenceTracker::new(&BpOptions::default());
        t.record(10.0);
        t.mark_converged();
        assert!(t.converged());
    }
}
