//! The Credo MTX-derived streaming format (§3.2).
//!
//! "We break up the format in two: one for node data and the other for edge
//! data. For both files, our structure is largely the same: two identifiers
//! followed by the probabilities for the node's states or the edge's joint
//! probability matrix. In preserving the original input format's basic
//! structure of edges linked together by node ids, our node input format
//! appears to be nothing but self-cycling nodes."
//!
//! Concretely (1-based ids, as in Matrix Market):
//!
//! ```text
//! # nodes file                      # edges file
//! %%CredoMTX nodes                  %%CredoMTX edges
//! % comments…                       % shared-potential 2 2 0.9 0.1 0.1 0.9
//! 4 4 4                             4 4 3
//! 1 1 0.25 0.75                     1 2
//! 2 2 0.5 0.5                       2 3 0.8 0.2 0.3 0.7   (per-edge mode)
//! …                                 …
//! ```
//!
//! The header line is `rows cols nnz` (Matrix Market convention); for the
//! node file `nnz` is the node count, for the edge file the edge count.
//! Edge lines carry a row-major joint matrix when in per-edge mode and
//! nothing beyond the two ids when a `% shared-potential` directive is
//! present. Both files parse line by line — neither is ever resident in
//! memory (unlike BIF, §3.2).
//!
//! # Validation contract
//!
//! The scanners reject malformed input with line-numbered
//! [`IoError::Parse`] errors rather than corrupting the graph silently:
//!
//! * probabilities and matrix values must be finite and non-negative —
//!   otherwise [`credo_graph::Belief::normalize`] would flip signs or fall
//!   back to uniform without any diagnostic;
//! * a node line whose probabilities sum to zero is rejected (it carries no
//!   distribution at all);
//! * self-loop edge lines (`u u`) are rejected: a node cannot send a
//!   message to itself under pairwise BP;
//! * **duplicate edge lines are permitted** and each contributes its own
//!   undirected edge — the format describes multigraphs, matching the
//!   random-multigraph synthetic family (§4's `NxE` graphs sample endpoint
//!   pairs with replacement). Streamed and resident ingestion agree on
//!   this: both materialize every line.
//!
//! Count-mismatch errors discovered at end of file ("declared N but held
//! M") report the last data line of the file, not a line one past EOF.
//!
//! # Streaming scanners
//!
//! [`NodeScanner`] and [`EdgeScanner`] are the pull-based line scanners
//! underneath [`read`]. They are public so multi-pass consumers — the
//! `credo-stream` sharded lowerer streams each file twice — share one
//! validation path with the resident reader: anything the resident path
//! rejects, the streaming path rejects with the same line number.

use crate::error::IoError;
use credo_graph::{Belief, BeliefGraph, GraphBuilder, JointMatrix, MAX_BELIEFS};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const FORMAT: &str = "Credo-MTX";

/// Reads a graph from node and edge files on disk.
pub fn read_files(nodes: &Path, edges: &Path) -> Result<BeliefGraph, IoError> {
    let nf = std::fs::File::open(nodes)?;
    let ef = std::fs::File::open(edges)?;
    read(BufReader::new(nf), BufReader::new(ef))
}

/// Reads a graph from any pair of buffered readers (node data, edge data).
pub fn read<R1: BufRead, R2: BufRead>(nodes: R1, edges: R2) -> Result<BeliefGraph, IoError> {
    let mut ns = NodeScanner::open(nodes)?;
    let num_nodes = ns.num_nodes();
    let mut builder = GraphBuilder::with_capacity(num_nodes, 0);
    let mut cards = vec![0u8; num_nodes];
    while let Some((id, probs)) = ns.next_node()? {
        cards[id] = probs.len() as u8;
        let mut b = Belief::from_slice(probs);
        b.normalize();
        builder.add_node(b);
    }
    let mut es = EdgeScanner::open(edges, &cards)?;
    if let Some(m) = es.shared() {
        builder.shared_potential(m.clone());
    }
    while let Some(edge) = es.next_edge()? {
        match edge.matrix {
            None => builder.add_undirected_edge(edge.src, edge.dst),
            Some(values) => {
                let rows = cards[edge.src as usize] as usize;
                let cols = cards[edge.dst as usize] as usize;
                let m = JointMatrix::from_rows(rows, cols, values.to_vec());
                builder.add_undirected_edge_with(edge.src, edge.dst, m);
            }
        }
    }
    Ok(builder.build()?)
}

fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::parse(FORMAT, line, msg)
}

/// Parses one probability token, rejecting non-finite and negative values
/// at the source line instead of letting them corrupt beliefs downstream.
fn parse_prob(tok: &str, lineno: usize, what: &str) -> Result<f32, IoError> {
    let p: f32 = tok
        .parse()
        .map_err(|_| parse_err(lineno, format!("bad {what} '{tok}'")))?;
    if !p.is_finite() {
        return Err(parse_err(lineno, format!("non-finite {what} '{tok}'")));
    }
    if p < 0.0 {
        return Err(parse_err(lineno, format!("negative {what} '{tok}'")));
    }
    Ok(p)
}

/// Streams a `%%CredoMTX nodes` file line by line.
///
/// Construction parses the banner, comments and size line; each
/// [`NodeScanner::next_node`] call yields one validated `(zero-based id,
/// unnormalized probabilities)` record in id order. The declared-count
/// check runs when the file ends.
pub struct NodeScanner<R: BufRead> {
    r: R,
    line: String,
    lineno: usize,
    /// Line number of the last meaningful line seen, for EOF diagnostics.
    last_data_line: usize,
    num_nodes: usize,
    seen: usize,
    probs: Vec<f32>,
    done: bool,
}

impl<R: BufRead> NodeScanner<R> {
    /// Opens the scanner: parses the banner and the `rows cols nnz` size
    /// line, validating that the declared entry count matches the node
    /// count.
    pub fn open(mut r: R) -> Result<Self, IoError> {
        let mut line = String::new();
        let mut lineno = 1usize;
        r.read_line(&mut line)?;
        if !line.starts_with("%%CredoMTX") || !line.contains("nodes") {
            return Err(parse_err(lineno, "expected '%%CredoMTX nodes' banner"));
        }
        let (num_nodes, declared) = loop {
            line.clear();
            lineno += 1;
            if r.read_line(&mut line)? == 0 {
                return Err(parse_err(lineno - 1, "missing size line"));
            }
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_ascii_whitespace();
            let mut field = || -> Result<usize, IoError> {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad size line"))
            };
            let rows = field()?;
            let _cols = field()?;
            let nnz = field()?;
            break (rows, nnz);
        };
        if declared != num_nodes {
            return Err(parse_err(
                lineno,
                format!("node file declares {declared} entries for {num_nodes} nodes"),
            ));
        }
        Ok(NodeScanner {
            r,
            line,
            lineno,
            last_data_line: lineno,
            num_nodes,
            seen: 0,
            probs: Vec::with_capacity(MAX_BELIEFS),
            done: false,
        })
    }

    /// Number of nodes the size line declares.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The next node record: `(zero-based id, raw probabilities)`. Returns
    /// `Ok(None)` once the file ends with exactly the declared node count.
    #[allow(clippy::should_implement_trait)]
    pub fn next_node(&mut self) -> Result<Option<(usize, &[f32])>, IoError> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.line.clear();
            self.lineno += 1;
            if self.r.read_line(&mut self.line)? == 0 {
                self.done = true;
                if self.seen != self.num_nodes {
                    return Err(parse_err(
                        self.last_data_line,
                        format!(
                            "node file declared {} nodes but held {}",
                            self.num_nodes, self.seen
                        ),
                    ));
                }
                return Ok(None);
            }
            let lineno = self.lineno;
            let t = self.line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            self.last_data_line = lineno;
            let mut it = t.split_ascii_whitespace();
            let mut id = || -> Result<usize, IoError> {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad node id"))
            };
            let id1 = id()?;
            let id2 = id()?;
            if id1 != id2 {
                return Err(parse_err(
                    lineno,
                    format!("node lines are self-cycles; got {id1} {id2}"),
                ));
            }
            if id1 < 1 || id1 > self.num_nodes {
                return Err(parse_err(lineno, format!("node id {id1} out of range")));
            }
            self.probs.clear();
            let mut sum = 0.0f32;
            for tok in it {
                let p = parse_prob(tok, lineno, "probability")?;
                sum += p;
                self.probs.push(p);
            }
            if self.probs.is_empty() || self.probs.len() > MAX_BELIEFS {
                return Err(parse_err(
                    lineno,
                    format!(
                        "node {id1} has {} beliefs (1..={MAX_BELIEFS})",
                        self.probs.len()
                    ),
                ));
            }
            if !sum.is_finite() {
                return Err(parse_err(
                    lineno,
                    format!("node {id1} has a non-finite total probability"),
                ));
            }
            if sum <= 0.0 {
                return Err(parse_err(
                    lineno,
                    format!("node {id1} has zero total probability"),
                ));
            }
            // Node ids must arrive in order so downstream ids line up; the
            // writer always emits them that way.
            if id1 != self.seen + 1 {
                return Err(parse_err(
                    lineno,
                    format!(
                        "node ids must be 1..=N in order; got {id1} after {}",
                        self.seen
                    ),
                ));
            }
            self.seen += 1;
            return Ok(Some((id1 - 1, &self.probs)));
        }
    }
}

/// One validated edge line: zero-based endpoint ids and, in per-edge mode,
/// the row-major joint matrix values (already shape-checked against the
/// endpoint cardinalities).
#[derive(Debug)]
pub struct EdgeLine<'a> {
    /// Zero-based source node id.
    pub src: u32,
    /// Zero-based destination node id.
    pub dst: u32,
    /// Row-major `card(src) × card(dst)` values; `None` in shared mode.
    pub matrix: Option<&'a [f32]>,
    /// 1-based line number the edge came from.
    pub lineno: usize,
}

/// Streams a `%%CredoMTX edges` file line by line.
///
/// Construction parses the banner, the optional `% shared-potential`
/// directive and the size line; each [`EdgeScanner::next_edge`] call
/// yields one validated [`EdgeLine`]. The declared-count check runs when
/// the file ends.
pub struct EdgeScanner<'c, R: BufRead> {
    r: R,
    cards: &'c [u8],
    line: String,
    lineno: usize,
    last_data_line: usize,
    declared_edges: usize,
    seen: usize,
    shared: Option<JointMatrix>,
    values: Vec<f32>,
    done: bool,
}

impl<'c, R: BufRead> EdgeScanner<'c, R> {
    /// Opens the scanner over an edge file for a graph whose per-node
    /// cardinalities are `cards` (matrix shapes are validated against it).
    pub fn open(mut r: R, cards: &'c [u8]) -> Result<Self, IoError> {
        let mut line = String::new();
        let mut lineno = 1usize;
        r.read_line(&mut line)?;
        if !line.starts_with("%%CredoMTX") || !line.contains("edges") {
            return Err(parse_err(lineno, "expected '%%CredoMTX edges' banner"));
        }
        let mut shared: Option<JointMatrix> = None;
        let declared_edges = loop {
            line.clear();
            lineno += 1;
            if r.read_line(&mut line)? == 0 {
                return Err(parse_err(lineno - 1, "missing size line"));
            }
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            if let Some(rest) = t.strip_prefix('%') {
                let rest = rest.trim();
                if let Some(spec) = rest.strip_prefix("shared-potential") {
                    shared = Some(parse_shared(spec, lineno)?);
                }
                continue;
            }
            let mut it = t.split_ascii_whitespace();
            let mut field = || -> Result<usize, IoError> {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad size line"))
            };
            let rows = field()?;
            if rows != cards.len() {
                return Err(parse_err(
                    lineno,
                    format!(
                        "edge file is over {rows} nodes, node file has {}",
                        cards.len()
                    ),
                ));
            }
            let _cols = field()?;
            break field()?;
        };
        Ok(EdgeScanner {
            r,
            cards,
            line,
            lineno,
            last_data_line: lineno,
            declared_edges,
            seen: 0,
            shared,
            values: Vec::new(),
            done: false,
        })
    }

    /// The shared joint matrix, when the file declares one.
    #[inline]
    pub fn shared(&self) -> Option<&JointMatrix> {
        self.shared.as_ref()
    }

    /// Number of edges the size line declares.
    #[inline]
    pub fn declared_edges(&self) -> usize {
        self.declared_edges
    }

    /// The next validated edge line, or `Ok(None)` once the file ends with
    /// exactly the declared edge count.
    pub fn next_edge(&mut self) -> Result<Option<EdgeLine<'_>>, IoError> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.line.clear();
            self.lineno += 1;
            if self.r.read_line(&mut self.line)? == 0 {
                self.done = true;
                if self.seen != self.declared_edges {
                    return Err(parse_err(
                        self.last_data_line,
                        format!(
                            "edge file declared {} edges but held {}",
                            self.declared_edges, self.seen
                        ),
                    ));
                }
                return Ok(None);
            }
            let lineno = self.lineno;
            let t = self.line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            self.last_data_line = lineno;
            let mut it = t.split_ascii_whitespace();
            let mut id = |what: &str| -> Result<usize, IoError> {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, format!("bad edge {what} id")))
            };
            let src = id("source")?;
            let dst = id("destination")?;
            for v in [src, dst] {
                if v < 1 || v > self.cards.len() {
                    return Err(parse_err(lineno, format!("edge node id {v} out of range")));
                }
            }
            if src == dst {
                return Err(parse_err(
                    lineno,
                    format!("self-loop edge {src} {dst}: a node cannot message itself"),
                ));
            }
            let (s, d) = ((src - 1) as u32, (dst - 1) as u32);
            if self.shared.is_some() {
                if it.next().is_some() {
                    return Err(parse_err(
                        lineno,
                        "edge carries a matrix but a shared potential is declared",
                    ));
                }
                self.seen += 1;
                return Ok(Some(EdgeLine {
                    src: s,
                    dst: d,
                    matrix: None,
                    lineno,
                }));
            }
            self.values.clear();
            for tok in it {
                self.values.push(parse_prob(tok, lineno, "matrix value")?);
            }
            let (rows, cols) = (self.cards[src - 1] as usize, self.cards[dst - 1] as usize);
            if self.values.len() != rows * cols {
                return Err(parse_err(
                    lineno,
                    format!(
                        "edge {src}->{dst} needs a {rows}x{cols} matrix, got {} values",
                        self.values.len()
                    ),
                ));
            }
            self.seen += 1;
            return Ok(Some(EdgeLine {
                src: s,
                dst: d,
                matrix: Some(&self.values),
                lineno,
            }));
        }
    }
}

fn parse_shared(spec: &str, lineno: usize) -> Result<JointMatrix, IoError> {
    let mut it = spec.split_ascii_whitespace();
    let rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(lineno, "bad shared-potential rows"))?;
    let cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(lineno, "bad shared-potential cols"))?;
    let values: Vec<f32> = it
        .map(|tok| parse_prob(tok, lineno, "shared-potential value"))
        .collect::<Result<_, _>>()?;
    if values.len() != rows * cols {
        return Err(parse_err(
            lineno,
            format!(
                "shared-potential needs {rows}x{cols}={} values",
                rows * cols
            ),
        ));
    }
    Ok(JointMatrix::from_rows(rows, cols, values))
}

/// Writes a graph as a (nodes, edges) file pair.
pub fn write_files(graph: &BeliefGraph, nodes: &Path, edges: &Path) -> Result<(), IoError> {
    let nf = std::fs::File::create(nodes)?;
    let ef = std::fs::File::create(edges)?;
    write(graph, BufWriter::new(nf), BufWriter::new(ef))
}

/// Writes a graph to any pair of writers.
pub fn write<W1: Write, W2: Write>(
    graph: &BeliefGraph,
    mut nodes: W1,
    mut edges: W2,
) -> Result<(), IoError> {
    let n = graph.num_nodes();
    writeln!(nodes, "%%CredoMTX nodes")?;
    writeln!(nodes, "{n} {n} {n}")?;
    for (i, b) in graph.priors().iter().enumerate() {
        write!(nodes, "{0} {0}", i + 1)?;
        for &p in b.as_slice() {
            write!(nodes, " {p}")?;
        }
        writeln!(nodes)?;
    }
    nodes.flush()?;

    writeln!(edges, "%%CredoMTX edges")?;
    let shared = graph.potentials().is_shared();
    if shared {
        // Arc 0's forward matrix is the shared potential.
        let m = graph.potentials().get(0, false);
        write!(edges, "% shared-potential {} {}", m.rows(), m.cols())?;
        for &v in m.data() {
            write!(edges, " {v}")?;
        }
        writeln!(edges)?;
    }
    // Emit one line per logical edge: forward (non-reverse) arcs only.
    let forward: Vec<u32> = (0..graph.num_arcs() as u32)
        .filter(|&a| !graph.arc(a).reverse)
        .collect();
    writeln!(edges, "{n} {n} {}", forward.len())?;
    for &a in &forward {
        let arc = graph.arc(a);
        write!(edges, "{} {}", arc.src + 1, arc.dst + 1)?;
        if !shared {
            for &v in graph.potential(a).data() {
                write!(edges, " {v}")?;
            }
        }
        writeln!(edges)?;
    }
    edges.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use credo_graph::generators::{synthetic, GenOptions, PotentialKind};

    fn roundtrip(g: &BeliefGraph) -> BeliefGraph {
        let mut nbuf = Vec::new();
        let mut ebuf = Vec::new();
        write(g, &mut nbuf, &mut ebuf).unwrap();
        read(&nbuf[..], &ebuf[..]).unwrap()
    }

    fn parse_line(err: &IoError) -> usize {
        match err {
            IoError::Parse { line, .. } => *line,
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn shared_mode_roundtrips() {
        let g = synthetic(40, 160, &GenOptions::new(3).with_seed(2));
        let back = roundtrip(&g);
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_arcs(), g.num_arcs());
        assert!(back.potentials().is_shared());
        for (a, b) in g.priors().iter().zip(back.priors()) {
            assert!(a.linf_diff(b) < 1e-6);
        }
        for (x, y) in g.arcs().iter().zip(back.arcs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn per_edge_mode_roundtrips() {
        let g = synthetic(
            20,
            60,
            &GenOptions::new(2).with_potentials(PotentialKind::PerEdgeRandom),
        );
        let back = roundtrip(&g);
        assert!(!back.potentials().is_shared());
        for a in 0..g.num_arcs() as u32 {
            let (m1, m2) = (g.potential(a), back.potential(a));
            for p in 0..m1.rows() {
                for c in 0..m1.cols() {
                    assert!((m1.get(p, c) - m2.get(p, c)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn missing_banner_is_rejected() {
        let err = read(&b"1 1 1\n1 1 0.5 0.5\n"[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("banner"));
    }

    #[test]
    fn node_count_mismatch_reports_last_data_line() {
        let nodes = b"%%CredoMTX nodes\n3 3 3\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n3 3 0\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("held 2"), "{err}");
        // Line 4 holds `2 2 0.5 0.5`, the last data line — not one past EOF.
        assert_eq!(parse_line(&err), 4);
    }

    #[test]
    fn edge_count_mismatch_reports_last_data_line() {
        let nodes = b"%%CredoMTX nodes\n3 3 3\n1 1 0.5 0.5\n2 2 0.5 0.5\n3 3 0.5 0.5\n";
        let edges =
            b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n3 3 3\n1 2\n2 3\n% trailing\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("held 2"), "{err}");
        // Line 5 holds `2 3`, the last edge line; the trailing comment and
        // EOF come after but are never reported.
        assert_eq!(parse_line(&err), 5);
    }

    #[test]
    fn empty_node_body_reports_size_line() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n";
        let err = read(&nodes[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("held 0"), "{err}");
        assert_eq!(parse_line(&err), 2);
    }

    #[test]
    fn non_self_cycle_node_line_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 2 0.5 0.5\n2 2 0.5 0.5\n";
        let err = read(&nodes[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("self-cycle"), "{err}");
    }

    #[test]
    fn negative_probability_is_rejected_with_line_number() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 -0.5 1.5\n";
        let err = read(&nodes[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("negative probability"), "{err}");
        assert_eq!(parse_line(&err), 4);
    }

    #[test]
    fn non_finite_probabilities_are_rejected() {
        for bad in ["inf", "-inf", "NaN", "1e40"] {
            let nodes = format!("%%CredoMTX nodes\n1 1 1\n1 1 {bad} 0.5\n");
            let err = read(nodes.as_bytes(), &b""[..]).unwrap_err();
            assert!(
                err.to_string().contains("probability"),
                "{bad} slipped through: {err}"
            );
            assert_eq!(parse_line(&err), 3, "{bad}");
        }
    }

    #[test]
    fn zero_probability_row_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n1 1 1\n1 1 0 0\n";
        let err = read(&nodes[..], &b""[..]).unwrap_err();
        assert!(err.to_string().contains("zero total"), "{err}");
        assert_eq!(parse_line(&err), 3);
    }

    #[test]
    fn negative_shared_potential_value_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 0.9 -0.1 0.1 0.9\n2 2 1\n1 2\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(
            err.to_string().contains("negative shared-potential"),
            "{err}"
        );
        assert_eq!(parse_line(&err), 2);
    }

    #[test]
    fn non_finite_matrix_value_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n2 2 1\n1 2 0.9 NaN 0.1 0.9\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("non-finite matrix"), "{err}");
        assert_eq!(parse_line(&err), 3);
    }

    #[test]
    fn self_loop_edge_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n2 2 1\n2 2\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
        assert_eq!(parse_line(&err), 4);
    }

    #[test]
    fn duplicate_edges_are_multigraph_edges() {
        // The synthetic family samples endpoints with replacement, so the
        // format must carry parallel edges; each line is its own edge.
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 0.8 0.2 0.2 0.8\n2 2 2\n1 2\n1 2\n";
        let g = read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.in_arcs(1).len(), 2, "both parallel arcs reach node 1");
    }

    #[test]
    fn wrong_matrix_size_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n2 2 1\n1 2 0.9 0.1\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("2x2 matrix"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let nodes = b"%%CredoMTX nodes\n% a comment\n\n2 2 2\n1 1 0.3 0.7\n\n% more\n2 2 0.6 0.4\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 0.8 0.2 0.2 0.8\n2 2 1\n1 2\n";
        let g = read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!((g.priors()[0].get(1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_edge_id_is_rejected() {
        let nodes = b"%%CredoMTX nodes\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n2 2 1\n1 7\n";
        let err = read(&nodes[..], &edges[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("credo_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = synthetic(30, 90, &GenOptions::new(2).with_seed(4));
        let np = dir.join("g.nodes.mtx");
        let ep = dir.join("g.edges.mtx");
        write_files(&g, &np, &ep).unwrap();
        let back = read_files(&np, &ep).unwrap();
        assert_eq!(back.num_arcs(), g.num_arcs());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn priors_are_normalized_on_load() {
        let nodes = b"%%CredoMTX nodes\n1 1 1\n1 1 2.0 6.0\n";
        let edges = b"%%CredoMTX edges\n% shared-potential 2 2 1 0 0 1\n1 1 0\n";
        let g = read(&nodes[..], &edges[..]).unwrap();
        assert_eq!(g.priors()[0].as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn scanners_are_restartable_for_multi_pass_streaming() {
        // The credo-stream lowerer opens the same bytes twice; both passes
        // must see identical records.
        let g = synthetic(25, 80, &GenOptions::new(2).with_seed(9));
        let mut nbuf = Vec::new();
        let mut ebuf = Vec::new();
        write(&g, &mut nbuf, &mut ebuf).unwrap();
        let mut cards = Vec::new();
        let mut first_pass = Vec::new();
        let mut ns = NodeScanner::open(&nbuf[..]).unwrap();
        while let Some((id, probs)) = ns.next_node().unwrap() {
            cards.push(probs.len() as u8);
            first_pass.push((id, probs.to_vec()));
        }
        let mut ns = NodeScanner::open(&nbuf[..]).unwrap();
        let mut second_pass = Vec::new();
        while let Some((id, probs)) = ns.next_node().unwrap() {
            second_pass.push((id, probs.to_vec()));
        }
        assert_eq!(first_pass, second_pass);

        let collect_edges = |bytes: &[u8], cards: &[u8]| {
            let mut es = EdgeScanner::open(bytes, cards).unwrap();
            let mut out = Vec::new();
            while let Some(e) = es.next_edge().unwrap() {
                out.push((e.src, e.dst));
            }
            out
        };
        let e1 = collect_edges(&ebuf, &cards);
        let e2 = collect_edges(&ebuf, &cards);
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), g.num_edges());
    }
}
