//! Single-threaded engines — the paper's optimized "C" control
//! implementations plus the traditional two-pass baseline.

mod edge;
mod naive_tree;
mod node;
mod tree;

pub use edge::SeqEdgeEngine;
pub use naive_tree::NaiveTreeEngine;
pub use node::SeqNodeEngine;
pub use tree::TreeEngine;
