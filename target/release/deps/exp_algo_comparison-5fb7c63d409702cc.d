/root/repo/target/release/deps/exp_algo_comparison-5fb7c63d409702cc.d: crates/bench/src/bin/exp_algo_comparison.rs Cargo.toml

/root/repo/target/release/deps/libexp_algo_comparison-5fb7c63d409702cc.rmeta: crates/bench/src/bin/exp_algo_comparison.rs Cargo.toml

crates/bench/src/bin/exp_algo_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
