//! Execution statistics reported by every engine.

use std::time::Duration;

/// Telemetry for a single engine iteration. Every engine pushes one entry
/// per iteration into [`BpStats::per_iteration`], so the residual
/// trajectory and queue occupancy are inspectable after the run (and
/// exportable live through a `tracing::Dispatch`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationStats {
    /// Global L1 change this iteration (Algorithm 1's `sum`).
    pub delta: f32,
    /// Node updates performed this iteration.
    pub node_updates: u64,
    /// Edge messages computed this iteration.
    pub message_updates: u64,
    /// Elements scheduled at the start of the iteration: the work-queue
    /// length, or the full active set when the queue is off.
    pub queue_depth: u64,
    /// Time spent in the iteration — host wall-clock for CPU engines,
    /// simulated device time for simulated-GPU engines (matching
    /// [`BpStats::reported_time`]).
    pub elapsed: Duration,
}

/// What happened during a BP run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BpStats {
    /// Engine identifier ("C Node", "CUDA Edge", …).
    pub engine: &'static str,
    /// Iterations executed (a traditional two-pass run reports 2).
    pub iterations: u32,
    /// True when the global sum fell below the threshold (or the work queue
    /// drained) before the iteration cap.
    pub converged: bool,
    /// Final global L1 change (Algorithm 1's `sum` at exit).
    pub final_delta: f32,
    /// Node updates performed across all iterations.
    pub node_updates: u64,
    /// Edge messages computed across all iterations.
    pub message_updates: u64,
    /// CAS retries spent in atomic float multiplies (the §2.4 contention
    /// cost). Non-zero only for engines that combine messages with
    /// `atomic_mul_f32`; engines with deterministic reductions (and the
    /// sequential/simulated ones) report 0.
    pub atomic_retries: u64,
    /// The time the engine reports for comparison purposes. For CPU
    /// engines this is host wall-clock; for simulated-GPU engines it is
    /// **simulated device time** (see `credo-gpusim`), which is the number
    /// the paper's figures correspond to.
    pub reported_time: Duration,
    /// Actual host wall-clock spent, for every engine (equals
    /// `reported_time` on CPU engines; much larger than simulated time for
    /// GPU engines, since functional emulation is not free).
    pub host_time: Duration,
    /// Per-iteration trajectory, one entry per [`BpStats::iterations`]
    /// (empty only for a run that performed no iterations).
    pub per_iteration: Vec<IterationStats>,
}

impl BpStats {
    /// Reported time in seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.reported_time.as_secs_f64()
    }

    /// Speedup of `self` relative to `baseline` (baseline time / our time),
    /// in reported time.
    pub fn speedup_vs(&self, baseline: &BpStats) -> f64 {
        let mine = self.reported_time.as_secs_f64();
        if mine == 0.0 {
            return f64::INFINITY;
        }
        baseline.reported_time.as_secs_f64() / mine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = BpStats {
            reported_time: Duration::from_millis(10),
            ..Default::default()
        };
        let slow = BpStats {
            reported_time: Duration::from_millis(1000),
            ..Default::default()
        };
        assert!((fast.speedup_vs(&slow) - 100.0).abs() < 1e-9);
        assert!((slow.speedup_vs(&fast) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn zero_time_speedup_is_infinite() {
        let zero = BpStats::default();
        let slow = BpStats {
            reported_time: Duration::from_millis(5),
            ..Default::default()
        };
        assert!(zero.speedup_vs(&slow).is_infinite());
    }
}
