/root/repo/target/release/deps/__probe-1534f45707a1f390.d: crates/bench/src/bin/__probe.rs

/root/repo/target/release/deps/__probe-1534f45707a1f390: crates/bench/src/bin/__probe.rs

crates/bench/src/bin/__probe.rs:
