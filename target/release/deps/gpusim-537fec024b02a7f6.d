/root/repo/target/release/deps/gpusim-537fec024b02a7f6.d: crates/bench/benches/gpusim.rs Cargo.toml

/root/repo/target/release/deps/libgpusim-537fec024b02a7f6.rmeta: crates/bench/benches/gpusim.rs Cargo.toml

crates/bench/benches/gpusim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
