/root/repo/target/release/deps/exp_classifier-d3dd446e5f9b9ec9.d: crates/bench/src/bin/exp_classifier.rs Cargo.toml

/root/repo/target/release/deps/libexp_classifier-d3dd446e5f9b9ec9.rmeta: crates/bench/src/bin/exp_classifier.rs Cargo.toml

crates/bench/src/bin/exp_classifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
