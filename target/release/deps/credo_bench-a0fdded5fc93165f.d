/root/repo/target/release/deps/credo_bench-a0fdded5fc93165f.d: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libcredo_bench-a0fdded5fc93165f.rlib: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libcredo_bench-a0fdded5fc93165f.rmeta: crates/bench/src/lib.rs crates/bench/src/dataset.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/dataset.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/suite.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
